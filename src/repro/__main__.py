"""Command-line interface: the FPVM toolchain as a user would drive it.

::

    python -m repro run program.fpc --arith mpfr:200
    python -m repro run program.fpc --native
    python -m repro spy program.fpc
    python -m repro analyze program.fpc --json
    python -m repro analyze --registry --validate
    python -m repro workload lorenz --arith mpfr:200 --trace t.ndjson
    python -m repro trace summarize t.ndjson
    python -m repro list

Arithmetic specs: ``vanilla`` | ``mpfr:BITS`` | ``adaptive[:INIT:MAX]``
| ``posit:NBITS[:ES]`` | ``interval``.
"""

from __future__ import annotations

import argparse
import sys
from pathlib import Path

from repro.arith import SPEC_HELP, ArithSpecError, from_spec, normalize_spec
from repro.compiler import compile_source
from repro.fpvm.runtime import FPVMConfig
from repro.harness.experiment import slowdown
from repro.session import Session
from repro.workloads import WORKLOADS, get_workload


def parse_arith(spec: str):
    """Parse an arithmetic-system spec string (CLI shell: exits on error).

    Library code should call :func:`repro.arith.from_spec`, which
    raises :class:`~repro.errors.ArithSpecError` instead of exiting.
    """
    try:
        return from_spec(spec)
    except ArithSpecError as exc:
        raise SystemExit(str(exc)) from None


def _load_builder(args):
    instrument = bool(getattr(args, "instrument", False))
    if getattr(args, "workload", None):
        spec = get_workload(args.workload)
        size = args.size
        return lambda: spec.build(size), args.workload
    path = Path(args.program)
    source = path.read_text()
    return (lambda: compile_source(source, instrument_fp=instrument),
            path.name)


def _print_run(res, label: str, stats: bool) -> None:
    sys.stdout.write(res.stdout)
    if stats:
        print(f"--- {label} ---", file=sys.stderr)
        print(f"  exit code          : {res.exit_code}", file=sys.stderr)
        print(f"  instructions       : {res.instr_count}", file=sys.stderr)
        print(f"  modeled cycles     : {res.cycles:.0f}", file=sys.stderr)
        print(f"  FP traps           : {res.fp_traps}", file=sys.stderr)
        print(f"  correctness traps  : {res.correctness_traps}",
              file=sys.stderr)
        if res.fpvm is not None:
            st = res.fpvm.stats
            print(f"  shadow values made : "
                  f"{res.fpvm.emulator.boxes_created}", file=sys.stderr)
            print(f"  GC passes          : {len(res.fpvm.gc.passes)}",
                  file=sys.stderr)
            print(f"  libm interposed    : {st.libm_interposed_calls}",
                  file=sys.stderr)
            print(f"  decode cache hits  : {st.decode_hit_rate:.1%}",
                  file=sys.stderr)
            print(f"  bind cache hits    : {st.bind_hit_rate:.1%}",
                  file=sys.stderr)
            if st.jit_sites_compiled:
                print(f"  jit sites compiled : {st.jit_sites_compiled} "
                      f"({st.jit_fused_kernels} fused kernels)",
                      file=sys.stderr)
                print(f"  jit hits           : {st.jit_hits} "
                      f"(+{st.jit_fast_path} hw fast path), "
                      f"hit rate {st.patched_site_hit_rate:.1%}",
                      file=sys.stderr)
                print(f"  boxes elided       : {st.boxes_elided}",
                      file=sys.stderr)
            if st.trace_loops_compiled:
                print(f"  traced loops       : "
                      f"{st.trace_loops_compiled} compiled "
                      f"({st.trace_record_aborts} record aborts, "
                      f"{st.trace_invalidations} invalidated)",
                      file=sys.stderr)
                print(f"  trace iterations   : {st.trace_hits} "
                      f"({st.trace_deopts} deopts, "
                      f"{st.trace_side_exits} side exits)",
                      file=sys.stderr)
            print(f"  arithmetic system  : {res.fpvm.arith.describe()}",
                  file=sys.stderr)


def _load_lane_specs(args):
    """Resolve the shared ``--batch N`` / ``--lanes FILE`` flags into a
    list of lane-spec dicts, or ``None`` when neither was given."""
    import json

    if getattr(args, "lanes", None):
        doc = json.loads(Path(args.lanes).read_text())
        if not isinstance(doc, list) or not doc:
            raise SystemExit(f"{args.lanes}: expected a non-empty JSON "
                             "list of lane-spec objects")
        allowed = {"params", "stdin", "label",
                   "max_instructions", "max_cycles"}
        for i, lane in enumerate(doc):
            if not isinstance(lane, dict):
                raise SystemExit(f"{args.lanes}: lane {i} is not an object")
            bad = set(lane) - allowed
            if bad:
                raise SystemExit(f"{args.lanes}: lane {i} has unknown "
                                 f"fields {sorted(bad)} "
                                 f"(allowed: {sorted(allowed)})")
            if "stdin" in lane and isinstance(lane["stdin"], str):
                lane["stdin"] = lane["stdin"].encode()
        return doc
    if getattr(args, "batch", None):
        if args.batch < 1:
            raise SystemExit("--batch must be >= 1")
        return [{} for _ in range(args.batch)]
    return None


def _print_batch(batch, label: str, stats: bool) -> None:
    for i, lane in enumerate(batch):
        name = lane.spec.label or f"lane{i}"
        sys.stdout.write(f"--- {name} ---\n")
        sys.stdout.write(lane.stdout)
        if lane.error is not None:
            print(f"  [{name}] {lane.error_type}: {lane.error}",
                  file=sys.stderr)
    if stats:
        print(f"--- {label} batch ---", file=sys.stderr)
        print(f"  lanes              : {len(batch)}", file=sys.stderr)
        print(f"  vector dispatches  : {batch.dispatches}", file=sys.stderr)
        print(f"  spill events       : {batch.spill_events}",
              file=sys.stderr)
        print(f"  spill rate         : {batch.spill_rate:.1%}",
              file=sys.stderr)
        print(f"  exit codes         : "
              f"{[lane.exit_code for lane in batch]}", file=sys.stderr)


def _make_sink(args):
    path = getattr(args, "trace", None)
    if not path:
        return None
    from repro.trace import NDJSONSink

    return NDJSONSink(path)


def cmd_run(args) -> int:
    builder, label = _load_builder(args)
    sink = _make_sink(args)
    lanes = _load_lane_specs(args)
    if lanes is not None:
        if args.native:
            session = Session(builder, None, trace=sink, label=label)
        else:
            arith = parse_arith(args.arith)
            mode = args.mode or ("trap-and-patch" if args.patch_mode
                                 else "trap-and-emulate")
            config = FPVMConfig(mode=mode, trace=sink,
                                jit_threshold=args.jit,
                                trace_jit_threshold=args.trace_jit,
                                gc_mode=args.gc_mode)
            session = Session(builder, arith, config=config,
                              patch=not args.no_patch,
                              delivery_scenario=args.scenario, label=label)
        with session as s:
            batch = s.run_batch(lanes)
        _print_batch(batch, label, args.stats)
        if sink is not None:
            print(f"trace written to {args.trace} ({sink.emitted} events)",
                  file=sys.stderr)
        return 0 if batch.ok else 1
    if args.native:
        with Session(builder, None, trace=sink, label=label) as s:
            res = s.run()
        _print_run(res, f"{label} (native)", args.stats)
    else:
        arith = parse_arith(args.arith)
        mode = args.mode or ("trap-and-patch" if args.patch_mode
                             else "trap-and-emulate")
        config = FPVMConfig(mode=mode, trace=sink,
                            jit_threshold=args.jit,
                            trace_jit_threshold=args.trace_jit,
                            gc_mode=args.gc_mode)
        with Session(builder, arith, config=config,
                     patch=not args.no_patch,
                     delivery_scenario=args.scenario, label=label) as s:
            res = s.run()
        if args.slowdown:
            with Session(builder, None, label=label) as ns:
                nat = ns.run()
            print(f"  modeled slowdown   : {slowdown(nat, res):.0f}x",
                  file=sys.stderr)
        _print_run(res, f"{label} (FPVM+{arith.describe()})", args.stats)
    if sink is not None:
        print(f"trace written to {args.trace} ({sink.emitted} events)",
              file=sys.stderr)
    return res.exit_code


def cmd_workload(args) -> int:
    args.workload = args.name
    return cmd_run(args)


def cmd_trace_summarize(args) -> int:
    from repro.trace import summarize_file

    print(summarize_file(args.file, top=args.top))
    return 0


def cmd_spy(args) -> int:
    from repro.fpvm.fpspy import spy_on

    builder, label = _load_builder(args)
    report = spy_on(builder)
    print(report.summary())
    print(f"top event sites in {label}:")
    for rip, count in report.hottest_sites(args.top):
        print(f"  {rip:#010x}  {count:8d} events")
    for mn, count in report.by_mnemonic.most_common(args.top):
        print(f"  {mn:12s} {count:8d}")
    return 0


def _print_analysis_text(binary, report) -> None:
    print(report.summary())
    prov = report.provenance
    if report.sinks or report.bitwise_sites or report.movq_sites:
        print("patch sites:")
        for addr in report.sinks:
            print(f"  sink     {binary.text_map[addr]}")
            stores = prov.get(addr, [])
            if stores:
                srcs = ", ".join(f"{a:#x}" for a in stores)
                print(f"           intersects FP stores: {srcs}")
        for addr in report.bitwise_sites:
            print(f"  bitwise  {binary.text_map[addr]}")
        for addr in report.movq_sites:
            print(f"  movq     {binary.text_map[addr]}")
    if report.pruned_sinks:
        print("refinement-pruned sinks (no trap installed):")
        for addr in report.pruned_sinks:
            print(f"  pruned   {binary.text_map[addr]}")
            reason = report.prune_reasons.get(addr)
            if reason:
                print(f"           {reason}")
    for addr, name in report.extern_demote_sites:
        print(f"  call-demote @{addr:#x} -> {name}")


def cmd_analyze(args) -> int:
    import json

    from repro.analysis import analyze
    from repro.analysis.oracle import validate, validate_registry

    if args.registry:
        results = validate_registry(args.arith, size=args.size)
        if args.json:
            print(json.dumps([r.to_dict() for r in results], indent=2))
        else:
            for r in results:
                print(r.summary())
                for v in r.violations:
                    print(f"    VIOLATION: {v}")
        return 0 if all(r.ok for r in results) else 1

    builder, label = _load_builder(args)
    binary = builder()
    report = analyze(binary)
    validation = None
    if args.validate:
        target = args.workload if getattr(args, "workload", None) else builder
        validation = validate(target, args.arith, size=args.size)
    if args.json:
        doc = report.to_dict()
        if validation is not None:
            doc["validation"] = validation.to_dict()
        print(json.dumps(doc, indent=2))
    else:
        _print_analysis_text(binary, report)
        if validation is not None:
            print(validation.summary())
            for v in validation.violations:
                print(f"    VIOLATION: {v}")
    if args.disassemble:
        print(binary.disassemble())
    return 0 if validation is None or validation.ok else 1


def cmd_chaos(args) -> int:
    from repro.faults import chaos_cells, run_campaign, survival_table
    from repro.faults.crashreport import write_crash_report

    workloads = [w.strip() for w in args.workloads.split(",") if w.strip()]
    for w in workloads:
        if w not in WORKLOADS:
            raise SystemExit(f"unknown workload {w!r}; see `repro list`")
    ariths = []
    for raw in (a.strip() for a in args.ariths.split(",")):
        if not raw:
            continue
        try:
            ariths.append(normalize_spec(raw))
        except ArithSpecError as exc:
            raise SystemExit(str(exc)) from None
    stages = None
    if args.stages:
        stages = tuple(s.strip() for s in args.stages.split(",")
                       if s.strip())
    cells = chaos_cells(
        workloads, ariths,
        seed=args.seed,
        **({"stages": stages} if stages else {}),
        size=args.size,
        storm_threshold=args.storm_threshold,
        max_instructions=args.max_instructions,
    )
    print(f"chaos campaign: {len(cells)} cells "
          f"({len(workloads)} workloads x {len(ariths)} arithmetics), "
          f"seed {args.seed}", file=sys.stderr)
    lanes = _load_lane_specs(args)
    if lanes is not None:
        # determinism probe: run the fault-free control as N SoA lanes
        # and demand bit-identical results before trusting the table
        from repro.session import LaneSpec

        for w in workloads:
            for arith in ariths:
                with Session(w, arith, size=args.size) as probe:
                    batch = probe.run_batch(
                        [LaneSpec(**lane) for lane in lanes])
                first = batch[0]
                same = all(lane.stdout == first.stdout
                           and lane.exit_code == first.exit_code
                           and lane.cycles == first.cycles
                           for lane in batch)
                spec = ":".join(str(x) for x in arith)
                state = "identical" if same else "DIVERGED"
                print(f"control determinism [{w} {spec}]: "
                      f"{len(batch)} lanes {state} "
                      f"(spill rate {batch.spill_rate:.0%})",
                      file=sys.stderr)
                if not same:
                    raise SystemExit(
                        f"control lanes diverged for {w} {spec}; "
                        "campaign table would not be reproducible")
    results = run_campaign(cells, jobs=args.jobs,
                           timeout_s=args.timeout,
                           retries=args.retries)
    print(survival_table(results))
    crashed = [r for r in results if r.error is not None]
    if args.crash_reports and crashed:
        outdir = Path(args.crash_reports)
        outdir.mkdir(parents=True, exist_ok=True)
        for res in crashed:
            arith = "-".join(str(x) for x in (res.cell.arith or ("native",)))
            name = f"{res.cell.workload}_{arith}_{res.cell.label}.ndjson"
            write_crash_report(outdir / name, res.crash_records)
        print(f"{len(crashed)} crash reports written to {outdir}",
              file=sys.stderr)
    return 0


def cmd_bench(args) -> int:
    """Run benchmarks/run_benchmarks.py (or the regression check)."""
    import subprocess

    root = Path(__file__).resolve().parents[2]
    script = root / "benchmarks" / ("check_regression.py" if args.check
                                    else "run_benchmarks.py")
    if not script.exists():
        raise SystemExit(f"benchmark suite not found at {script} "
                         "(run from a source checkout)")
    cmd = [sys.executable, str(script)]
    if args.check:
        cmd += ["--threshold", str(args.threshold)]
    else:
        if args.seed_baseline is not None:
            cmd += ["--seed-baseline", str(args.seed_baseline)]
        if getattr(args, "lanes", None):
            raise SystemExit("bench: use --batch N to size the batched "
                             "sweep; --lanes files apply to run/chaos")
        if getattr(args, "batch", None):
            cmd += ["--batch-lanes", str(args.batch)]
    return subprocess.run(cmd, cwd=root).returncode


def cmd_list(args) -> int:
    print(f"{'workload':14s} {'paper R815 slowdown':>20s}  description")
    for name in sorted(WORKLOADS):
        spec = WORKLOADS[name]
        slow = (f"{spec.paper_slowdown_r815:>19.0f}x"
                if spec.paper_slowdown_r815 is not None else f"{'-':>20s}")
        print(f"{name:14s} {slow}  {spec.description}")
    return 0


def cmd_sanitize(args) -> int:
    """NSan-mode numerical sanitizer: dual-path divergence checking
    with static interval-range exemptions.

    Exit code 1 means the sanitizer flagged at least one site (a bug
    report, like a sanitizer should); 2 means the static exemptions
    were dynamically unsound (a repro bug, never acceptable).
    """
    import json

    from repro.analysis.ranges import (autotune_precision,
                                       validate_registry,
                                       validate_sanitize_exemptions)
    from repro.fpvm.sanitize import SanitizeConfig

    if args.registry:
        names = args.only.split(",") if args.only else None
        results = validate_registry(size=args.size,
                                    threshold=args.threshold,
                                    precision=args.precision,
                                    names=names)
        if args.json:
            json.dump([v.to_dict() for v in results], sys.stdout,
                      indent=2)
            sys.stdout.write("\n")
        else:
            for v in results:
                print(v.summary())
        return 2 if any(not v.ok for v in results) else 0

    builder, label = _load_builder(args)

    if args.autotune:
        a = autotune_precision(builder, threshold=args.threshold)
        a.label = label
        if args.json:
            json.dump(a.to_dict(), sys.stdout, indent=2)
            sys.stdout.write("\n")
        else:
            print(a.summary())
        return 0

    scfg = SanitizeConfig(threshold=args.threshold,
                          precision=args.precision,
                          exempt=not args.no_exempt,
                          aggressive=args.exempt_aggressive)
    sess = Session(builder, ("sanitize", args.precision),
                   config=FPVMConfig(sanitize=scfg), label=label)
    res = sess.run()
    san = sess.fpvm.sanitizer
    stats = sess.fpvm.stats

    validation = None
    if args.validate:
        validation = validate_sanitize_exemptions(
            builder, threshold=args.threshold, precision=args.precision)

    if args.json:
        doc = {
            "label": label,
            "guest_exit_code": res.exit_code,
            "threshold": args.threshold,
            "precision": args.precision,
            "checks": stats.sanitize_checks,
            "flags": stats.sanitize_flags,
            "exempt_execs": stats.sanitize_exempt_execs,
            "sites": [s.to_dict() for s in san.divergence_table(args.top)],
            "ranges": (sess.range_report.to_dict()
                       if sess.range_report is not None else None),
            "validation": (validation.to_dict()
                           if validation is not None else None),
        }
        json.dump(doc, sys.stdout, indent=2)
        sys.stdout.write("\n")
    else:
        sys.stdout.write(res.stdout)
        err = sys.stderr
        print(f"--- sanitize {label} "
              f"[mpfr:{args.precision} shadow, threshold "
              f"{args.threshold:g}] ---", file=err)
        print(f"  dual-path checks   : {stats.sanitize_checks}", file=err)
        print(f"  divergence flags   : {stats.sanitize_flags}", file=err)
        if sess.range_report is not None:
            rr = sess.range_report
            print(f"  static proofs      : {len(rr.proven)}/"
                  f"{len(rr.checkable)} sites divergence-free "
                  f"({100 * rr.prove_rate:.1f}%), {len(rr.exact)} "
                  f"bit-exact", file=err)
            mode = "aggressive" if args.exempt_aggressive else "bit-exact"
            print(f"  exempt executions  : {stats.sanitize_exempt_execs} "
                  f"({mode} exemption)", file=err)
        rows = san.divergence_table(args.top)
        flagged = [s for s in rows if s.flags]
        if flagged:
            print("  flagged sites (worst first):", file=err)
            print(f"    {'addr':>10s} {'mnemonic':10s} {'flags':>7s} "
                  f"{'max rel':>10s} {'max ulps':>9s}  example "
                  f"(ieee vs shadow)", file=err)
            for s in flagged:
                print(f"    {s.addr:#10x} {s.mnemonic:10s} "
                      f"{s.flags:7d} {s.max_rel:10.3g} "
                      f"{s.max_ulps:9d}  {s.example_ieee:.17g} vs "
                      f"{s.example_shadow:.17g}", file=err)
        else:
            print("  no divergence above threshold", file=err)
        if validation is not None:
            print(f"  exemption gate     : {validation.summary()}",
                  file=err)

    if validation is not None and not validation.ok:
        return 2
    return 1 if stats.sanitize_flags else 0


def cmd_serve(args) -> int:
    from repro.serve.daemon import ServeConfig, run_daemon

    run_daemon(ServeConfig(
        host=args.host,
        port=args.port,
        socket_path=args.socket,
        workers=args.workers,
        queue_limit=args.queue_limit,
        shed_watermark=args.shed_watermark,
        job_timeout_s=args.job_timeout,
        retries=args.retries,
        backoff_s=args.backoff,
        cache_entries=args.cache_entries,
        selftest=not args.no_selftest,
        crash_log=args.crash_log,
    ))
    return 0


def build_parser() -> argparse.ArgumentParser:
    p = argparse.ArgumentParser(
        prog="python -m repro",
        description="FPVM: run binaries under alternative arithmetic",
    )
    sub = p.add_subparsers(dest="command", required=True)

    # one shared parent so run / workload / chaos / bench expose the
    # same batching surface with identical help text
    batch_parent = argparse.ArgumentParser(add_help=False)
    bg = batch_parent.add_mutually_exclusive_group()
    bg.add_argument("--batch", type=int, default=None, metavar="N",
                    help="execute N struct-of-arrays lanes in lockstep "
                         "(run: N identical lanes; chaos: N-lane "
                         "control determinism probe; bench: lane count "
                         "for the batched sweep)")
    bg.add_argument("--lanes", default=None, metavar="FILE",
                    help="JSON list of lane specs (params/stdin/label/"
                         "max_instructions/max_cycles); implies batched "
                         "execution")

    def add_target(sp, workload_ok=True):
        if workload_ok:
            g = sp.add_mutually_exclusive_group(required=True)
            g.add_argument("program", nargs="?", help="fpc source file")
            g.add_argument("--workload", choices=sorted(WORKLOADS),
                           help="built-in benchmark instead of a file")
            sp.add_argument("--size", default="test",
                            choices=("test", "bench", "S"))
        else:
            sp.add_argument("program", help="fpc source file")

    def add_run_options(sp):
        sp.add_argument("--arith", default="vanilla", help=SPEC_HELP)
        sp.add_argument("--native", action="store_true",
                        help="run without FPVM")
        sp.add_argument("--no-patch", action="store_true",
                        help="skip static analysis/patching (unsound!)")
        sp.add_argument("--patch-mode", action="store_true",
                        help="use trap-and-patch instead of trap-and-emulate")
        sp.add_argument("--mode", default=None,
                        choices=("trap-and-emulate", "trap-and-patch",
                                 "static"),
                        help="execution approach (overrides --patch-mode)")
        sp.add_argument("--instrument", action="store_true",
                        help="compile with inline FP checks "
                             "(the compiler-based approach; use with "
                             "--mode static)")
        sp.add_argument("--scenario", default="user",
                        choices=("user", "kernel", "hrt", "pipeline"),
                        help="trap delivery deployment scenario (paper §6)")
        sp.add_argument("--stats", action="store_true",
                        help="print run statistics to stderr")
        sp.add_argument("--slowdown", action="store_true",
                        help="also run natively and report the slowdown")
        sp.add_argument("--trace", default=None, metavar="FILE",
                        help="record an NDJSON event trace to FILE "
                             "(inspect with `trace summarize FILE`)")
        sp.add_argument("--jit", type=int, default=0, metavar="N",
                        help="compile a trap site to a specialized "
                             "closure after N traps (0 disables; "
                             "trap-and-emulate mode only)")
        sp.add_argument("--trace-jit", type=int, default=0, metavar="N",
                        help="trace-compile a hot loop after N "
                             "back-edge executions (0 disables; "
                             "trap-and-emulate mode only)")
        sp.add_argument("--gc-mode", default="full",
                        choices=("full", "incremental"),
                        help="GC scan strategy: full rescans all "
                             "writable memory each epoch; incremental "
                             "scans only dirtied pages")

    run_p = sub.add_parser("run", help="execute under FPVM (or natively)",
                           parents=[batch_parent])
    add_target(run_p)
    add_run_options(run_p)
    run_p.set_defaults(fn=cmd_run)

    wl_p = sub.add_parser("workload",
                          help="run a built-in benchmark under FPVM",
                          parents=[batch_parent])
    wl_p.add_argument("name", choices=sorted(WORKLOADS))
    wl_p.add_argument("--size", default="bench",
                      choices=("test", "bench", "S"))
    add_run_options(wl_p)
    wl_p.set_defaults(fn=cmd_workload, program=None)

    tr_p = sub.add_parser("trace", help="work with recorded trace files")
    tr_sub = tr_p.add_subparsers(dest="trace_command", required=True)
    sum_p = tr_sub.add_parser("summarize",
                              help="per-site hot spots, flag histogram, "
                                   "coverage report")
    sum_p.add_argument("file", help="NDJSON trace file")
    sum_p.add_argument("--top", type=int, default=10,
                       help="rows in the hot-spot table")
    sum_p.set_defaults(fn=cmd_trace_summarize)

    spy_p = sub.add_parser("spy", help="FPSpy: record FP events only")
    add_target(spy_p)
    spy_p.add_argument("--top", type=int, default=8)
    spy_p.set_defaults(fn=cmd_spy)

    an_p = sub.add_parser("analyze", help="static analysis report")
    an_g = an_p.add_mutually_exclusive_group(required=True)
    an_g.add_argument("program", nargs="?", help="fpc source file")
    an_g.add_argument("--workload", choices=sorted(WORKLOADS),
                      help="built-in benchmark instead of a file")
    an_g.add_argument("--registry", action="store_true",
                      help="oracle cross-check over every built-in "
                           "workload (implies --validate)")
    an_p.add_argument("--size", default="test",
                      choices=("test", "bench", "S"))
    an_p.add_argument("--json", action="store_true",
                      help="machine-readable report on stdout")
    an_p.add_argument("--validate", action="store_true",
                      help="run the dynamic soundness oracle: an "
                           "instrumented unpatched run cross-checks "
                           "every observed box consumption against "
                           "the static patch set")
    an_p.add_argument("--arith", default="mpfr:64",
                      help="arithmetic for the oracle run "
                           f"(boxing one recommended; {SPEC_HELP})")
    an_p.add_argument("--disassemble", action="store_true")
    an_p.set_defaults(fn=cmd_analyze)

    ls_p = sub.add_parser("list", help="list built-in workloads")
    ls_p.set_defaults(fn=cmd_list)

    sa_p = sub.add_parser(
        "sanitize",
        help="NSan-mode numerical sanitizer: every FP op runs "
             "dual-path (IEEE + high-precision shadow); sites whose "
             "relative divergence exceeds the threshold are flagged "
             "with per-site provenance; an interval-range static pass "
             "exempts sites proven divergence-free")
    sa_g = sa_p.add_mutually_exclusive_group(required=True)
    sa_g.add_argument("program", nargs="?", help="fpc source file")
    sa_g.add_argument("--workload", choices=sorted(WORKLOADS),
                      help="built-in benchmark instead of a file")
    sa_g.add_argument("--registry", action="store_true",
                      help="exemption soundness gate over every "
                           "built-in workload: no statically proven "
                           "site may dynamically diverge")
    sa_p.add_argument("--size", default="test",
                      choices=("test", "bench", "S"))
    sa_p.add_argument("--threshold", type=float, default=1e-6,
                      help="relative-divergence flag threshold")
    sa_p.add_argument("--precision", type=int, default=200,
                      help="shadow precision in bits")
    sa_p.add_argument("--no-exempt", action="store_true",
                      help="dual-path check every site, ignoring the "
                           "interval-range pass")
    sa_p.add_argument("--exempt-aggressive", action="store_true",
                      help="exempt every proven-divergence-free site, "
                           "not just the bit-exact ones (faster; may "
                           "mask bugs a downstream cancellation would "
                           "have revealed)")
    sa_p.add_argument("--validate", action="store_true",
                      help="also run the exemption soundness gate "
                           "(full dual-path run; proven sites must "
                           "not flag)")
    sa_p.add_argument("--autotune", action="store_true",
                      help="walk the shadow precision down until the "
                           "verdict changes; report the minimal safe "
                           "precision")
    sa_p.add_argument("--json", action="store_true",
                      help="machine-readable report on stdout")
    sa_p.add_argument("--top", type=int, default=10,
                      help="rows in the divergence table")
    sa_p.add_argument("--only", default=None, metavar="NAMES",
                      help="with --registry: comma-separated workload "
                           "subset to gate instead of the full registry")
    sa_p.set_defaults(fn=cmd_sanitize)

    be_p = sub.add_parser(
        "bench",
        help="run the micro benchmark suite and append a "
             "schema-versioned record to BENCH_interp.json",
        parents=[batch_parent])
    be_p.add_argument("--seed-baseline", type=float, default=None,
                      metavar="N",
                      help="instrs/sec measured on the seed commit "
                           "(default: carried over from the last record)")
    be_p.add_argument("--check", action="store_true",
                      help="compare against the committed baseline "
                           "instead of recording (CI smoke gate)")
    be_p.add_argument("--threshold", type=float, default=0.30,
                      help="allowed fractional regression for --check")
    be_p.set_defaults(fn=cmd_bench)

    ch_p = sub.add_parser(
        "chaos",
        help="fault-injection campaign over built-in workloads",
        parents=[batch_parent])
    ch_p.add_argument("--seed", type=int, default=0,
                      help="campaign seed (same seed = same table)")
    ch_p.add_argument("--workloads", default="lorenz,three_body",
                      help="comma-separated workload names")
    ch_p.add_argument("--ariths", default="mpfr:128",
                      help=f"comma-separated arithmetic specs ({SPEC_HELP})")
    ch_p.add_argument("--stages", default=None,
                      help="comma-separated fault stages "
                           "(default: all seven)")
    ch_p.add_argument("--size", default="test",
                      choices=("test", "bench", "S"))
    ch_p.add_argument("--storm-threshold", type=int, default=8,
                      help="degradations at one site before it is "
                           "permanently demoted")
    ch_p.add_argument("--max-instructions", type=int, default=5_000_000,
                      help="per-cell instruction watchdog")
    ch_p.add_argument("--timeout", type=float, default=120.0,
                      help="per-cell wall-clock timeout (seconds)")
    ch_p.add_argument("--retries", type=int, default=1,
                      help="retry rounds for failed/timed-out cells")
    ch_p.add_argument("--jobs", type=int, default=None,
                      help="worker processes (default: REPRO_JOBS or "
                           "CPU count)")
    ch_p.add_argument("--crash-reports", default=None, metavar="DIR",
                      help="write NDJSON crash reports for crashed "
                           "cells into DIR")
    ch_p.set_defaults(fn=cmd_chaos)

    sv_p = sub.add_parser(
        "serve",
        help="run the FPVM-as-a-service daemon: accept jobs over a "
             "local HTTP API with crash-isolated workers, admission "
             "control, and load-shedding")
    sv_p.add_argument("--host", default="127.0.0.1")
    sv_p.add_argument("--port", type=int, default=8714,
                      help="TCP port (0 = kernel-assigned)")
    sv_p.add_argument("--socket", default=None, metavar="PATH",
                      help="listen on a unix socket instead of TCP")
    sv_p.add_argument("--workers", type=int, default=2,
                      help="crash-isolated worker processes")
    sv_p.add_argument("--queue-limit", type=int, default=16,
                      help="backlog ceiling; jobs above it get a "
                           "structured 429")
    sv_p.add_argument("--shed-watermark", type=int, default=8,
                      help="backlog level where new jobs are demoted "
                           "to vanilla-precision before any are "
                           "rejected")
    sv_p.add_argument("--job-timeout", type=float, default=30.0,
                      help="per-job wall-clock timeout (seconds)")
    sv_p.add_argument("--retries", type=int, default=2,
                      help="retry budget for jobs whose worker died "
                           "or timed out")
    sv_p.add_argument("--backoff", type=float, default=0.05,
                      help="base retry backoff (doubles per attempt)")
    sv_p.add_argument("--cache-entries", type=int, default=256,
                      help="result-cache capacity (0 disables)")
    sv_p.add_argument("--no-selftest", action="store_true",
                      help="skip the startup self-test job")
    sv_p.add_argument("--crash-log", default=None, metavar="FILE",
                      help="append NDJSON crash records of contained "
                           "guest deaths to FILE")
    sv_p.set_defaults(fn=cmd_serve)
    return p


def main(argv=None) -> int:
    args = build_parser().parse_args(argv)
    return args.fn(args)


if __name__ == "__main__":
    sys.exit(main())
