"""Bit-level manipulation of IEEE-754 binary64 and binary32 values.

Everything in the simulated machine stores floating point data as raw
unsigned integers (``u64`` / ``u32``).  This module is the single place
that knows the IEEE-754 layout:

``binary64``: 1 sign bit | 11 exponent bits | 52 fraction bits
``binary32``: 1 sign bit |  8 exponent bits | 23 fraction bits

NaN taxonomy (x64 convention): a NaN whose fraction MSB (the "quiet
bit") is **set** is a quiet NaN; clear (with nonzero fraction) is a
signaling NaN.  FPVM's NaN-boxes are signaling NaNs, so these
predicates are on the hot path of the whole system.
"""

from __future__ import annotations

import struct

# ---------------------------------------------------------------------------
# binary64 layout constants
# ---------------------------------------------------------------------------

F64_SIGN_BIT = 1 << 63
F64_EXP_SHIFT = 52
F64_EXP_MASK = 0x7FF0_0000_0000_0000
F64_FRAC_MASK = 0x000F_FFFF_FFFF_FFFF
#: the "quiet" bit — fraction MSB; set => quiet NaN
F64_QNAN_BIT = 1 << 51
F64_EXP_BIAS = 1023
F64_MAX_BIASED_EXP = 0x7FF

#: canonical quiet NaN produced by x64 hardware for invalid operations
F64_DEFAULT_QNAN = 0xFFF8_0000_0000_0000

F64_POS_INF = 0x7FF0_0000_0000_0000
F64_NEG_INF = 0xFFF0_0000_0000_0000
F64_POS_ZERO = 0x0000_0000_0000_0000
F64_NEG_ZERO = 0x8000_0000_0000_0000

# ---------------------------------------------------------------------------
# binary32 layout constants
# ---------------------------------------------------------------------------

F32_SIGN_BIT = 1 << 31
F32_EXP_SHIFT = 23
F32_EXP_MASK = 0x7F80_0000
F32_FRAC_MASK = 0x007F_FFFF
F32_QNAN_BIT = 1 << 22
F32_EXP_BIAS = 127
F32_MAX_BIASED_EXP = 0xFF
F32_DEFAULT_QNAN = 0xFFC0_0000

_PACK_D = struct.Struct("<d")
_PACK_Q = struct.Struct("<Q")
_PACK_F = struct.Struct("<f")
_PACK_I = struct.Struct("<I")


# ---------------------------------------------------------------------------
# pack / unpack
# ---------------------------------------------------------------------------

def f64_to_bits(x: float) -> int:
    """Return the u64 bit pattern of a Python float (binary64)."""
    return _PACK_Q.unpack(_PACK_D.pack(x))[0]


def bits_to_f64(b: int) -> float:
    """Return the Python float whose binary64 bit pattern is ``b``."""
    return _PACK_D.unpack(_PACK_Q.pack(b & 0xFFFF_FFFF_FFFF_FFFF))[0]


def f32_to_bits(x: float) -> int:
    """Return the u32 bit pattern of ``x`` rounded to binary32."""
    return _PACK_I.unpack(_PACK_F.pack(x))[0]


def bits_to_f32(b: int) -> float:
    """Return (as a Python float) the binary32 value with bit pattern ``b``."""
    return _PACK_F.unpack(_PACK_I.pack(b & 0xFFFF_FFFF))[0]


# ---------------------------------------------------------------------------
# binary64 classification
# ---------------------------------------------------------------------------

def sign64(b: int) -> int:
    """0 for positive, 1 for negative."""
    return (b >> 63) & 1


def biased_exp64(b: int) -> int:
    return (b & F64_EXP_MASK) >> F64_EXP_SHIFT


def frac64(b: int) -> int:
    return b & F64_FRAC_MASK


def is_nan64(b: int) -> bool:
    return (b & F64_EXP_MASK) == F64_EXP_MASK and (b & F64_FRAC_MASK) != 0


def is_qnan64(b: int) -> bool:
    return is_nan64(b) and (b & F64_QNAN_BIT) != 0


def is_snan64(b: int) -> bool:
    return is_nan64(b) and (b & F64_QNAN_BIT) == 0


def is_inf64(b: int) -> bool:
    return (b & F64_EXP_MASK) == F64_EXP_MASK and (b & F64_FRAC_MASK) == 0


def is_zero64(b: int) -> bool:
    return (b & ~F64_SIGN_BIT) == 0


def is_denormal64(b: int) -> bool:
    """Denormal (subnormal) finite nonzero value."""
    return (b & F64_EXP_MASK) == 0 and (b & F64_FRAC_MASK) != 0


def is_finite64(b: int) -> bool:
    return (b & F64_EXP_MASK) != F64_EXP_MASK


def quiet64(b: int) -> int:
    """Quiet a NaN by setting its quiet bit (x64 keeps payload + sign)."""
    return b | F64_QNAN_BIT


def neg64(b: int) -> int:
    """Flip the sign bit (bit operation — exactly what ``xorpd`` does)."""
    return b ^ F64_SIGN_BIT


def abs64(b: int) -> int:
    """Clear the sign bit (exactly what ``andpd`` with ~sign does)."""
    return b & ~F64_SIGN_BIT


# ---------------------------------------------------------------------------
# binary32 classification
# ---------------------------------------------------------------------------

def is_nan32(b: int) -> bool:
    return (b & F32_EXP_MASK) == F32_EXP_MASK and (b & F32_FRAC_MASK) != 0


def is_snan32(b: int) -> bool:
    return is_nan32(b) and (b & F32_QNAN_BIT) == 0


def is_inf32(b: int) -> bool:
    return (b & F32_EXP_MASK) == F32_EXP_MASK and (b & F32_FRAC_MASK) == 0


def is_zero32(b: int) -> bool:
    return (b & ~F32_SIGN_BIT) == 0


def is_denormal32(b: int) -> bool:
    return (b & F32_EXP_MASK) == 0 and (b & F32_FRAC_MASK) != 0


def quiet32(b: int) -> int:
    return b | F32_QNAN_BIT


# ---------------------------------------------------------------------------
# exact decomposition:  value == (-1)^sign * mant * 2^exp   (mant: int >= 0)
# ---------------------------------------------------------------------------

def decompose64(b: int) -> tuple[int, int, int]:
    """Decompose a finite binary64 into ``(sign, mant, exp)``.

    The represented value is exactly ``(-1)**sign * mant * 2**exp`` with
    ``mant`` a non-negative integer.  Zero decomposes to ``(s, 0, 0)``.
    Raises :class:`ValueError` for NaN/Inf — callers must special-case
    those first (the softfloat layer always does).
    """
    e = biased_exp64(b)
    if e == F64_MAX_BIASED_EXP:
        raise ValueError("cannot decompose NaN/Inf")
    s = sign64(b)
    f = frac64(b)
    if e == 0:
        if f == 0:
            return (s, 0, 0)
        # subnormal: value = f * 2^(1 - bias - 52)
        return (s, f, 1 - F64_EXP_BIAS - 52)
    return (s, f | (1 << 52), e - F64_EXP_BIAS - 52)


def compose64(sign: int, mant: int, exp: int) -> int:
    """Inverse of :func:`decompose64` for exactly-representable values.

    Requires that ``mant * 2**exp`` be representable without rounding
    (used by tests and the exactness engine, not the arithmetic path).
    """
    if mant == 0:
        return F64_SIGN_BIT if sign else 0
    # normalize mantissa into [2^52, 2^53)
    while mant >= (1 << 53):
        if mant & 1:
            raise ValueError("value not exactly representable")
        mant >>= 1
        exp += 1
    while mant < (1 << 52):
        mant <<= 1
        exp -= 1
    biased = exp + F64_EXP_BIAS + 52
    if biased >= F64_MAX_BIASED_EXP:
        raise ValueError("overflow")
    if biased <= 0:
        # denormalize
        shift = 1 - biased
        if mant & ((1 << shift) - 1):
            raise ValueError("value not exactly representable (subnormal)")
        mant >>= shift
        biased = 0
        body = mant
    else:
        body = mant & F64_FRAC_MASK
    out = (biased << F64_EXP_SHIFT) | body
    if sign:
        out |= F64_SIGN_BIT
    return out


def decompose32(b: int) -> tuple[int, int, int]:
    """binary32 analogue of :func:`decompose64`."""
    e = (b & F32_EXP_MASK) >> F32_EXP_SHIFT
    if e == F32_MAX_BIASED_EXP:
        raise ValueError("cannot decompose NaN/Inf")
    s = (b >> 31) & 1
    f = b & F32_FRAC_MASK
    if e == 0:
        return (s, f, 1 - F32_EXP_BIAS - 23)
    return (s, f | (1 << 23), e - F32_EXP_BIAS - 23)


def normalize_value(mant: int, exp: int) -> tuple[int, int]:
    """Canonicalize ``mant * 2**exp`` so that ``mant`` is odd (or zero).

    Two exact values are equal iff their canonical forms are equal.
    """
    if mant == 0:
        return (0, 0)
    tz = (mant & -mant).bit_length() - 1
    return (mant >> tz, exp + tz)
