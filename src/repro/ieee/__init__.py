"""IEEE-754 bit-level layer.

This package implements the "hardware FPU" of the simulated machine:

* :mod:`repro.ieee.bits` — pure bit manipulation of binary64/binary32
  values (pack/unpack, classification, NaN taxonomy, decomposition into
  integer significand x power of two).
* :mod:`repro.ieee.exactness` — *exact* predicates answering "did this
  operation round?" using integer significand arithmetic.  These drive
  the MXCSR Precision (inexact) flag, which in turn drives every FPVM
  trap, so they must be exact rather than heuristic.
* :mod:`repro.ieee.softfloat` — the operation set of the simulated SSE
  unit: each op maps operand bit patterns to ``(result_bits, flags)``
  with x64-faithful special-value semantics.

Flag bit positions match the x64 MXCSR register so the machine layer
can use them directly.
"""

from repro.ieee.bits import (
    F64_SIGN_BIT,
    F64_EXP_MASK,
    F64_FRAC_MASK,
    F64_QNAN_BIT,
    f64_to_bits,
    bits_to_f64,
    f32_to_bits,
    bits_to_f32,
    is_nan64,
    is_snan64,
    is_qnan64,
    is_inf64,
    is_zero64,
    is_denormal64,
    quiet64,
    decompose64,
    compose64,
)
from repro.ieee.softfloat import Flags, SoftFPU

__all__ = [
    "F64_SIGN_BIT",
    "F64_EXP_MASK",
    "F64_FRAC_MASK",
    "F64_QNAN_BIT",
    "f64_to_bits",
    "bits_to_f64",
    "f32_to_bits",
    "bits_to_f32",
    "is_nan64",
    "is_snan64",
    "is_qnan64",
    "is_inf64",
    "is_zero64",
    "is_denormal64",
    "quiet64",
    "decompose64",
    "compose64",
    "Flags",
    "SoftFPU",
]
