"""Exact "did it round?" predicates for binary64 arithmetic.

The FPVM trap predicate is: *an instruction traps iff its result was
rounded (Precision), overflowed, underflowed, denormalized, or a NaN
was produced or consumed* (paper §4.1).  The machine therefore needs a
ground-truth answer to "is ``r`` the exact result of ``a op b``?" for
every operand pair — a heuristic would change which instructions trap
and thereby the entire evaluation.

All predicates work on *finite* operands decomposed into integer
significand x power-of-two form and use exact integer arithmetic.
Special values (NaN/Inf) are handled by the softfloat layer before
these are consulted.
"""

from __future__ import annotations

from repro.ieee.bits import decompose64, normalize_value


def _signed_value(b: int) -> tuple[int, int]:
    """Finite binary64 -> canonical ``(signed_mant, exp)`` pair."""
    s, m, e = decompose64(b)
    m, e = normalize_value(m, e)
    return (-m if s else m, e)


def values_equal(a_bits: int, b_bits: int) -> bool:
    """Exact numeric equality of two finite binary64 values (+0 == -0)."""
    return _signed_value(a_bits) == _signed_value(b_bits)


def sum_is_exact(a_bits: int, b_bits: int, r_bits: int) -> bool:
    """True iff finite ``r == a + b`` with no rounding."""
    sa, ea = _signed_value(a_bits)
    sb, eb = _signed_value(b_bits)
    # align to the smaller exponent and add exactly
    e = min(ea, eb)
    total = (sa << (ea - e)) + (sb << (eb - e))
    sr, er = _signed_value(r_bits)
    return normalize_value(abs(total), e) == (abs(sr), er) and (
        (total < 0) == (sr < 0) or total == 0
    )


def product_is_exact(a_bits: int, b_bits: int, r_bits: int) -> bool:
    """True iff finite ``r == a * b`` with no rounding."""
    sa, ea = _signed_value(a_bits)
    sb, eb = _signed_value(b_bits)
    prod = sa * sb
    sr, er = _signed_value(r_bits)
    if prod == 0:
        return sr == 0
    return normalize_value(abs(prod), ea + eb) == (abs(sr), er) and (
        (prod < 0) == (sr < 0)
    )


def quotient_is_exact(a_bits: int, b_bits: int, r_bits: int) -> bool:
    """True iff finite ``r == a / b`` with no rounding (``b`` nonzero).

    Cross-multiply: ``a/b == r``  iff  ``a == r * b`` exactly.
    """
    sa, ea = _signed_value(a_bits)
    sb, eb = _signed_value(b_bits)
    sr, er = _signed_value(r_bits)
    lhs = normalize_value(abs(sa), ea)
    rhs_m = abs(sr * sb)
    rhs = normalize_value(rhs_m, er + eb)
    if sa == 0:
        return sr == 0
    sign_ok = ((sa < 0) != (sb < 0)) == (sr < 0)
    return lhs == rhs and sign_ok


def sqrt_is_exact(a_bits: int, r_bits: int) -> bool:
    """True iff finite ``r == sqrt(a)`` with no rounding (``a >= 0``)."""
    sa, ea = _signed_value(a_bits)
    sr, er = _signed_value(r_bits)
    if sa == 0:
        return sr == 0
    if sr < 0:
        return False
    return normalize_value(sr * sr, 2 * er) == normalize_value(sa, ea)


def fma_is_exact(a_bits: int, b_bits: int, c_bits: int, r_bits: int) -> bool:
    """True iff finite ``r == a*b + c`` with no rounding."""
    sa, ea = _signed_value(a_bits)
    sb, eb = _signed_value(b_bits)
    sc, ec = _signed_value(c_bits)
    ep = ea + eb
    e = min(ep, ec)
    total = ((sa * sb) << (ep - e)) + (sc << (ec - e))
    sr, er = _signed_value(r_bits)
    if total == 0:
        return sr == 0
    return normalize_value(abs(total), e) == (abs(sr), er) and (
        (total < 0) == (sr < 0)
    )


def int_fits_f64(i: int) -> bool:
    """True iff the integer converts to binary64 without rounding."""
    if i == 0:
        return True
    m, _ = normalize_value(abs(i), 0)
    return m.bit_length() <= 53


def f64_is_integral(b_bits: int) -> bool:
    """True iff the finite binary64 value is an integer."""
    _, m, e = decompose64(b_bits)
    if m == 0:
        return True
    m, e = normalize_value(m, e)
    return e >= 0
