"""The simulated SSE scalar FPU: ops from bit patterns to (bits, flags).

Each operation takes operand *bit patterns* (u64 for binary64, u32 for
binary32) and returns ``(result_bits, flags)`` where ``flags`` uses the
MXCSR layout of :class:`Flags`.  Semantics follow the x64 SSE unit:

* NaN propagation: for arithmetic, if src1 is NaN the result is
  quiet(src1), else quiet(src2); a signaling NaN operand raises
  Invalid.  MIN/MAX forward src2 and raise Invalid on *any* NaN.
* Invalid also on inf-inf, 0*inf, 0/0, inf/inf, sqrt(negative).
* Denormal is a pre-computation flag raised by denormal operands.
* Precision (inexact) is computed *exactly* via
  :mod:`repro.ieee.exactness` — this is the predicate that makes FPVM
  trap on every rounding instruction.
* Overflow / Underflow are detected on the rounded result (underflow
  requires inexactness, matching masked-response hardware behaviour).

The value itself is computed with the host's binary64 hardware (Python
floats round-to-nearest-even, identical to the simulated machine's
default rounding mode), and with NumPy ``float32`` for binary32 ops so
no double rounding occurs.
"""

from __future__ import annotations

import math

import numpy as np

from repro.ieee import bits as B
from repro.ieee import exactness as X


class Flags:
    """MXCSR exception-flag bit positions (bits 0-5 of %mxcsr)."""

    IE = 1 << 0  #: invalid operation
    DE = 1 << 1  #: denormal operand
    ZE = 1 << 2  #: divide by zero
    OE = 1 << 3  #: overflow
    UE = 1 << 4  #: underflow
    PE = 1 << 5  #: precision (inexact)

    ALL = IE | DE | ZE | OE | UE | PE

    _NAMES = {IE: "IE", DE: "DE", ZE: "ZE", OE: "OE", UE: "UE", PE: "PE"}

    @classmethod
    def describe(cls, flags: int) -> str:
        """Human-readable flag set, e.g. ``"IE|PE"``."""
        if not flags:
            return "-"
        return "|".join(n for bit, n in cls._NAMES.items() if flags & bit)


_I64_MIN = -(1 << 63)
_I64_INDEFINITE = 1 << 63  # x64 integer indefinite value
_I32_INDEFINITE = 1 << 31


def _denormal_flag(*ops: int) -> int:
    return Flags.DE if any(B.is_denormal64(o) for o in ops) else 0


def _nan_arith_result(a: int, b: int) -> tuple[int, int]:
    """NaN propagation for two-operand arithmetic (src1 priority)."""
    flags = Flags.IE if (B.is_snan64(a) or B.is_snan64(b)) else 0
    if B.is_nan64(a):
        return B.quiet64(a), flags
    return B.quiet64(b), flags


class SoftFPU:
    """Stateless collection of simulated SSE operations.

    Methods are plain functions grouped in a class for discoverability;
    an instance carries no state (rounding mode is fixed to RNE, the
    machine default — directed-rounding MXCSR modes are not modeled,
    matching the paper's prototype).
    """

    # ----------------------------------------------------------------- #
    # binary64 arithmetic                                                #
    # ----------------------------------------------------------------- #

    def add64(self, a: int, b: int) -> tuple[int, int]:
        if B.is_nan64(a) or B.is_nan64(b):
            return _nan_arith_result(a, b)
        fa, fb = B.bits_to_f64(a), B.bits_to_f64(b)
        if B.is_inf64(a) or B.is_inf64(b):
            if B.is_inf64(a) and B.is_inf64(b) and (a ^ b) & B.F64_SIGN_BIT:
                return B.F64_DEFAULT_QNAN, Flags.IE
            return B.f64_to_bits(fa + fb), _denormal_flag(a, b)
        flags = _denormal_flag(a, b)
        r = fa + fb
        rb = B.f64_to_bits(r)
        return rb, flags | self._post_flags_sum(a, b, rb)

    def sub64(self, a: int, b: int) -> tuple[int, int]:
        if B.is_nan64(a) or B.is_nan64(b):
            return _nan_arith_result(a, b)
        if B.is_inf64(a) or B.is_inf64(b):
            if B.is_inf64(a) and B.is_inf64(b) and \
                    not ((a ^ b) & B.F64_SIGN_BIT):
                return B.F64_DEFAULT_QNAN, Flags.IE
            r = B.bits_to_f64(a) - B.bits_to_f64(b)
            return B.f64_to_bits(r), _denormal_flag(a, b)
        flags = _denormal_flag(a, b)
        r = B.bits_to_f64(a) - B.bits_to_f64(b)
        rb = B.f64_to_bits(r)
        return rb, flags | self._post_flags_sum(a, B.neg64(b), rb)

    def mul64(self, a: int, b: int) -> tuple[int, int]:
        if B.is_nan64(a) or B.is_nan64(b):
            return _nan_arith_result(a, b)
        inf_a, inf_b = B.is_inf64(a), B.is_inf64(b)
        if (inf_a and B.is_zero64(b)) or (inf_b and B.is_zero64(a)):
            return B.F64_DEFAULT_QNAN, Flags.IE
        flags = _denormal_flag(a, b)
        r = B.bits_to_f64(a) * B.bits_to_f64(b)
        rb = B.f64_to_bits(r)
        if inf_a or inf_b:
            return rb, flags
        if B.is_inf64(rb):
            return rb, flags | Flags.OE | Flags.PE
        extra = 0
        if not X.product_is_exact(a, b, rb):
            extra |= Flags.PE
            if B.is_denormal64(rb) or B.is_zero64(rb):
                extra |= Flags.UE
        return rb, flags | extra

    def div64(self, a: int, b: int) -> tuple[int, int]:
        if B.is_nan64(a) or B.is_nan64(b):
            return _nan_arith_result(a, b)
        inf_a, inf_b = B.is_inf64(a), B.is_inf64(b)
        zero_a, zero_b = B.is_zero64(a), B.is_zero64(b)
        if (inf_a and inf_b) or (zero_a and zero_b):
            return B.F64_DEFAULT_QNAN, Flags.IE
        flags = _denormal_flag(a, b)
        sign = (a ^ b) & B.F64_SIGN_BIT
        if zero_b:  # finite nonzero / 0 -> ZE, signed inf
            return sign | B.F64_POS_INF, flags | Flags.ZE
        if inf_a:
            return sign | B.F64_POS_INF, flags
        if inf_b or zero_a:
            return sign, flags  # signed zero
        r = B.bits_to_f64(a) / B.bits_to_f64(b)
        rb = B.f64_to_bits(r)
        if B.is_inf64(rb):
            return rb, flags | Flags.OE | Flags.PE
        extra = 0
        if not X.quotient_is_exact(a, b, rb):
            extra |= Flags.PE
            if B.is_denormal64(rb) or B.is_zero64(rb):
                extra |= Flags.UE
        return rb, flags | extra

    def sqrt64(self, a: int) -> tuple[int, int]:
        if B.is_nan64(a):
            f = Flags.IE if B.is_snan64(a) else 0
            return B.quiet64(a), f
        if B.is_zero64(a):
            return a, 0  # sqrt(+-0) = +-0 exactly
        if a & B.F64_SIGN_BIT:
            return B.F64_DEFAULT_QNAN, Flags.IE
        if B.is_inf64(a):
            return a, 0
        flags = _denormal_flag(a)
        r = math.sqrt(B.bits_to_f64(a))
        rb = B.f64_to_bits(r)
        if not X.sqrt_is_exact(a, rb):
            flags |= Flags.PE
        return rb, flags

    def fma64(self, a: int, b: int, c: int) -> tuple[int, int]:
        """Fused multiply-add ``a*b + c`` with a single rounding."""
        if B.is_nan64(a) or B.is_nan64(b) or B.is_nan64(c):
            snan = B.is_snan64(a) or B.is_snan64(b) or B.is_snan64(c)
            for op in (a, b, c):
                if B.is_nan64(op):
                    return B.quiet64(op), Flags.IE if snan else 0
        inf_a, inf_b = B.is_inf64(a), B.is_inf64(b)
        if (inf_a and B.is_zero64(b)) or (inf_b and B.is_zero64(a)):
            return B.F64_DEFAULT_QNAN, Flags.IE
        flags = _denormal_flag(a, b, c)
        if inf_a or inf_b or B.is_inf64(c):
            sp = (a ^ b) & B.F64_SIGN_BIT
            if inf_a or inf_b:
                if B.is_inf64(c) and (c & B.F64_SIGN_BIT) != sp:
                    return B.F64_DEFAULT_QNAN, flags | Flags.IE
                return sp | B.F64_POS_INF, flags
            return c, flags
        # exact integer evaluation then a single binary64 rounding
        sa, ea = X._signed_value(a)
        sb, eb = X._signed_value(b)
        sc, ec = X._signed_value(c)
        ep = ea + eb
        e = min(ep, ec)
        total = ((sa * sb) << (ep - e)) + (sc << (ec - e))
        if total == 0:
            # IEEE: exact zero result takes sign of c when cancelling (RNE: +0)
            prod_sign = (a ^ b) & B.F64_SIGN_BIT
            if sa * sb == 0 and sc == 0:
                zc = c & B.F64_SIGN_BIT
                rb = prod_sign & zc
            else:
                rb = 0
            return rb, flags
        r = math.ldexp(float(total), e) if abs(total).bit_length() <= 53 else (
            self._round_big(total, e)
        )
        rb = B.f64_to_bits(r)
        if B.is_inf64(rb):
            return rb, flags | Flags.OE | Flags.PE
        if not X.fma_is_exact(a, b, c, rb):
            flags |= Flags.PE
            if B.is_denormal64(rb) or B.is_zero64(rb):
                flags |= Flags.UE
        return rb, flags

    @staticmethod
    def _round_big(mant: int, exp: int) -> float:
        """Round ``mant * 2**exp`` (|mant| possibly > 2^53) to binary64.

        Keeps 54 significant bits plus a sticky bit so the host float
        conversion performs a single correct RNE rounding.
        """
        sign = -1.0 if mant < 0 else 1.0
        m = abs(mant)
        extra = m.bit_length() - 54
        if extra > 0:
            sticky = 1 if (m & ((1 << extra) - 1)) else 0
            m = (m >> extra) << 1 | sticky
            exp += extra - 1
        return sign * math.ldexp(float(m), exp)

    def min64(self, a: int, b: int) -> tuple[int, int]:
        """x64 MINSD: NaN (either) or both-zero -> returns src2 unchanged."""
        if B.is_nan64(a) or B.is_nan64(b):
            return b, Flags.IE
        flags = _denormal_flag(a, b)
        fa, fb = B.bits_to_f64(a), B.bits_to_f64(b)
        if fa == fb:  # covers +-0: forward src2
            return b, flags
        return (a if fa < fb else b), flags

    def max64(self, a: int, b: int) -> tuple[int, int]:
        if B.is_nan64(a) or B.is_nan64(b):
            return b, Flags.IE
        flags = _denormal_flag(a, b)
        fa, fb = B.bits_to_f64(a), B.bits_to_f64(b)
        if fa == fb:
            return b, flags
        return (a if fa > fb else b), flags

    @staticmethod
    def _post_flags_sum(a: int, b: int, rb: int) -> int:
        """OE/UE/PE for an addition whose operands are finite."""
        if B.is_inf64(rb):
            return Flags.OE | Flags.PE
        flags = 0
        if not X.sum_is_exact(a, b, rb):
            flags |= Flags.PE
            if B.is_denormal64(rb) or B.is_zero64(rb):
                flags |= Flags.UE
        return flags

    # ----------------------------------------------------------------- #
    # comparisons                                                        #
    # ----------------------------------------------------------------- #

    def ucomi64(self, a: int, b: int) -> tuple[tuple[int, int, int], int]:
        """UCOMISD: returns ((zf, pf, cf), flags); IE only on sNaN."""
        if B.is_nan64(a) or B.is_nan64(b):
            f = Flags.IE if (B.is_snan64(a) or B.is_snan64(b)) else 0
            return (1, 1, 1), f
        return self._compare_rflags(a, b), 0

    def comi64(self, a: int, b: int) -> tuple[tuple[int, int, int], int]:
        """COMISD: like UCOMISD but IE on *any* NaN."""
        if B.is_nan64(a) or B.is_nan64(b):
            return (1, 1, 1), Flags.IE
        return self._compare_rflags(a, b), 0

    @staticmethod
    def _compare_rflags(a: int, b: int) -> tuple[int, int, int]:
        fa, fb = B.bits_to_f64(a), B.bits_to_f64(b)
        if fa > fb:
            return (0, 0, 0)
        if fa < fb:
            return (0, 0, 1)
        return (1, 0, 0)

    def cmp64(self, a: int, b: int, predicate: int) -> tuple[int, int]:
        """CMPSD imm8 predicate -> all-ones / all-zeros u64 mask.

        Predicates 0-7: EQ, LT, LE, UNORD, NEQ, NLT, NLE, ORD.  The
        signaling predicates' IE behaviour is simplified: IE on sNaN.
        """
        nan = B.is_nan64(a) or B.is_nan64(b)
        flags = Flags.IE if (B.is_snan64(a) or B.is_snan64(b)) else 0
        if not nan:
            flags |= _denormal_flag(a, b)
        fa = None if nan else B.bits_to_f64(a)
        fb = None if nan else B.bits_to_f64(b)
        if predicate == 0:
            res = (not nan) and fa == fb
        elif predicate == 1:
            res = (not nan) and fa < fb
        elif predicate == 2:
            res = (not nan) and fa <= fb
        elif predicate == 3:
            res = nan
        elif predicate == 4:
            res = nan or fa != fb
        elif predicate == 5:
            res = nan or not (fa < fb)
        elif predicate == 6:
            res = nan or not (fa <= fb)
        elif predicate == 7:
            res = not nan
        else:
            raise ValueError(f"bad CMPSD predicate {predicate}")
        return (0xFFFF_FFFF_FFFF_FFFF if res else 0), flags

    # ----------------------------------------------------------------- #
    # conversions                                                        #
    # ----------------------------------------------------------------- #

    def cvt_i64_to_f64(self, i: int) -> tuple[int, int]:
        """CVTSI2SD from a signed 64-bit integer."""
        if i >= 1 << 63:
            i -= 1 << 64
        r = float(i)
        flags = 0 if X.int_fits_f64(i) else Flags.PE
        return B.f64_to_bits(r), flags

    def cvt_i32_to_f64(self, i: int) -> tuple[int, int]:
        if i >= 1 << 31:
            i -= 1 << 32
        return B.f64_to_bits(float(i)), 0  # all i32 are exact in f64

    def cvt_f64_to_i64(self, a: int, truncate: bool) -> tuple[int, int]:
        """CVT(T)SD2SI to 64-bit; out-of-range/NaN -> indefinite + IE."""
        if B.is_nan64(a) or B.is_inf64(a):
            return _I64_INDEFINITE, Flags.IE
        f = B.bits_to_f64(a)
        v = math.trunc(f) if truncate else _round_half_even(f)
        if not (_I64_MIN <= v <= (1 << 63) - 1):
            return _I64_INDEFINITE, Flags.IE
        flags = 0 if float(v) == f or v == f else Flags.PE
        if v != f:
            flags = Flags.PE
        return v & 0xFFFF_FFFF_FFFF_FFFF, flags

    def cvt_f64_to_i32(self, a: int, truncate: bool) -> tuple[int, int]:
        if B.is_nan64(a) or B.is_inf64(a):
            return _I32_INDEFINITE, Flags.IE
        f = B.bits_to_f64(a)
        v = math.trunc(f) if truncate else _round_half_even(f)
        if not (-(1 << 31) <= v <= (1 << 31) - 1):
            return _I32_INDEFINITE, Flags.IE
        flags = Flags.PE if v != f else 0
        return v & 0xFFFF_FFFF, flags

    def cvt_f64_to_f32(self, a: int) -> tuple[int, int]:
        """CVTSD2SS; result is a u32 bit pattern."""
        if B.is_nan64(a):
            flags = Flags.IE if B.is_snan64(a) else 0
            # narrow NaN: keep sign + top fraction bits, force quiet
            r32 = ((a >> 32) & 0x8000_0000) | 0x7FC0_0000 | ((a >> 29) & 0x1FFFFF)
            return r32 & 0xFFFF_FFFF, flags
        flags = _denormal_flag(a)
        f = B.bits_to_f64(a)
        with np.errstate(all="ignore"):
            r = np.float32(f)
        r32 = B.f32_to_bits(float(r))
        if B.is_inf32(r32) and B.is_finite64(a):
            return r32, flags | Flags.OE | Flags.PE
        if float(r) != f:
            flags |= Flags.PE
            if B.is_denormal32(r32) or (B.is_zero32(r32) and not B.is_zero64(a)):
                flags |= Flags.UE
        return r32, flags

    def cvt_f32_to_f64(self, a32: int) -> tuple[int, int]:
        """CVTSS2SD; widening is always exact; IE quiets sNaN."""
        if B.is_nan32(a32):
            flags = Flags.IE if B.is_snan32(a32) else 0
            r = ((a32 & 0x8000_0000) << 32) | B.F64_EXP_MASK | B.F64_QNAN_BIT
            r |= (a32 & 0x003F_FFFF) << 29
            return r, flags
        flags = Flags.DE if B.is_denormal32(a32) else 0
        return B.f64_to_bits(B.bits_to_f32(a32)), flags

    def round64(self, a: int, mode: int) -> tuple[int, int]:
        """ROUNDSD to integral; mode: 0=RNE, 1=floor, 2=ceil, 3=trunc."""
        if B.is_nan64(a):
            f = Flags.IE if B.is_snan64(a) else 0
            return B.quiet64(a), f
        if B.is_inf64(a) or B.is_zero64(a):
            return a, 0
        f = B.bits_to_f64(a)
        if mode == 0:
            v = float(_round_half_even(f))
        elif mode == 1:
            v = float(math.floor(f))
        elif mode == 2:
            v = float(math.ceil(f))
        elif mode == 3:
            v = float(math.trunc(f))
        else:
            raise ValueError(f"bad ROUNDSD mode {mode}")
        rb = B.f64_to_bits(v)
        if v == 0.0 and f < 0:  # preserve -0 behaviour of rounding
            rb |= B.F64_SIGN_BIT
        flags = Flags.PE if v != f else 0
        return rb, flags

    # ----------------------------------------------------------------- #
    # binary32 arithmetic (enough to demonstrate the "float problem")    #
    # ----------------------------------------------------------------- #

    def _arith32(self, a32: int, b32: int, op: str) -> tuple[int, int]:
        if B.is_nan32(a32) or B.is_nan32(b32):
            flags = Flags.IE if (B.is_snan32(a32) or B.is_snan32(b32)) else 0
            nan = a32 if B.is_nan32(a32) else b32
            return B.quiet32(nan), flags
        fa = np.float32(B.bits_to_f32(a32))
        fb = np.float32(B.bits_to_f32(b32))
        flags = Flags.DE if (B.is_denormal32(a32) or B.is_denormal32(b32)) else 0
        with np.errstate(all="ignore"):
            if op == "add":
                r = fa + fb
            elif op == "sub":
                r = fa - fb
            elif op == "mul":
                r = fa * fb
            elif op == "div":
                if float(fb) == 0.0:
                    if float(fa) == 0.0:
                        return B.F32_DEFAULT_QNAN, Flags.IE
                    sign = (a32 ^ b32) & B.F32_SIGN_BIT
                    return sign | 0x7F80_0000, flags | Flags.ZE
                r = fa / fb
            else:  # pragma: no cover - guarded by callers
                raise ValueError(op)
        if math.isnan(float(r)):
            return B.F32_DEFAULT_QNAN, flags | Flags.IE
        r32 = B.f32_to_bits(float(r))
        if B.is_inf32(r32) and not (B.is_inf32(a32) or B.is_inf32(b32)):
            return r32, flags | Flags.OE | Flags.PE
        # exactness: all f32 are exact f64; compare in f64 domain
        a64 = B.f64_to_bits(B.bits_to_f32(a32))
        b64 = B.f64_to_bits(B.bits_to_f32(b32))
        r64 = B.f64_to_bits(float(r))
        if B.is_inf32(a32) or B.is_inf32(b32) or B.is_inf32(r32):
            return r32, flags
        if op == "add":
            exact = X.sum_is_exact(a64, b64, r64)
        elif op == "sub":
            exact = X.sum_is_exact(a64, B.neg64(b64), r64)
        elif op == "mul":
            exact = X.product_is_exact(a64, b64, r64)
        else:
            exact = X.quotient_is_exact(a64, b64, r64)
        if not exact:
            flags |= Flags.PE
            if B.is_denormal32(r32) or (
                B.is_zero32(r32) and not (B.is_zero32(a32) and B.is_zero32(b32))
            ):
                flags |= Flags.UE
        return r32, flags

    def add32(self, a: int, b: int) -> tuple[int, int]:
        return self._arith32(a, b, "add")

    def sub32(self, a: int, b: int) -> tuple[int, int]:
        return self._arith32(a, b, "sub")

    def mul32(self, a: int, b: int) -> tuple[int, int]:
        return self._arith32(a, b, "mul")

    def div32(self, a: int, b: int) -> tuple[int, int]:
        return self._arith32(a, b, "div")


def _round_half_even(f: float) -> int:
    """Round-to-nearest-even to an integer (x64 default rounding)."""
    fl = math.floor(f)
    diff = f - fl
    if diff > 0.5:
        return fl + 1
    if diff < 0.5:
        return fl
    return fl + 1 if fl & 1 else fl
