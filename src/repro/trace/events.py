"""The typed trace-event vocabulary.

Every event is a slotted dataclass with JSON-safe fields (ints,
floats, strings, lists, bools, ``None``) so the NDJSON encoding is a
loss-free round trip::

    event == event_from_dict(event.to_dict())

``cycles`` is the modeled-clock timestamp (``machine.cost.cycles`` at
emission); wall-clock never appears in events, keeping traces
deterministic and diffable across runs.
"""

from __future__ import annotations

from dataclasses import dataclass, fields
from typing import ClassVar

from repro.ieee.softfloat import Flags

#: MXCSR sticky-flag bits in canonical order (name, bit)
_FLAG_BITS = (("IE", Flags.IE), ("DE", Flags.DE), ("ZE", Flags.ZE),
              ("OE", Flags.OE), ("UE", Flags.UE), ("PE", Flags.PE))


def flag_names(flags: int) -> list[str]:
    """Decode an MXCSR sticky-flag word into its set flag names."""
    return [name for name, bit in _FLAG_BITS if flags & bit]


@dataclass(slots=True)
class TraceEvent:
    """Base event: a timestamped record on the modeled clock."""

    kind: ClassVar[str] = "event"

    cycles: float = 0.0

    def to_dict(self) -> dict:
        """Flat JSON-safe dict, tagged with the event kind."""
        d = {"kind": self.kind}
        for f in fields(self):
            d[f.name] = getattr(self, f.name)
        return d


@dataclass(slots=True)
class TrapEvent(TraceEvent):
    """One serviced FP event (fault delivery or patch slow path).

    ``path`` is ``"fault"`` for SIGFPE-style delivery (§3.1) and
    ``"patch"`` for a trap-and-patch inline check that failed its
    postcondition and fell back to emulation (§3.2).
    """

    kind: ClassVar[str] = "trap"

    addr: int = 0
    mnemonic: str = ""
    flags: int = 0
    path: str = "fault"
    decode_cycles: float = 0.0
    bind_cycles: float = 0.0
    emulate_cycles: float = 0.0
    decode_hit: bool = False
    bind_hit: bool = False

    @property
    def flag_names(self) -> list[str]:
        return flag_names(self.flags)

    @property
    def stage_cycles(self) -> float:
        return self.decode_cycles + self.bind_cycles + self.emulate_cycles


@dataclass(slots=True)
class GCEpochEvent(TraceEvent):
    """One conservative mark-and-sweep pass (Fig. 10 row, per epoch)."""

    kind: ClassVar[str] = "gc_epoch"

    words_scanned: int = 0
    bytes_scanned: int = 0
    boxes_marked: int = 0
    alive_before: int = 0
    freed: int = 0
    alive_after: int = 0
    scan_cycles: float = 0.0
    #: incremental mode: only dirty pages were freshly scanned; clean
    #: pages replayed their remembered candidate handles
    incremental: bool = False
    pages_scanned: int = 0
    pages_total: int = 0
    remembered_marks: int = 0


@dataclass(slots=True)
class CorrectnessTrapEvent(TraceEvent):
    """A statically patched sink / call-demotion site fired (§4.2)."""

    kind: ClassVar[str] = "correctness_trap"

    addr: int = 0
    mnemonic: str = ""
    trap_kind: str = "sink"      # "sink" | "call_demote"
    demotions: int = 0


@dataclass(slots=True)
class DemotionEvent(TraceEvent):
    """One NaN-boxed value demoted back to an IEEE double.

    ``location`` names the storage slot ("xmm3[0]", "mem:0x1000008",
    "gpr:xmm-arg0", "printf-arg", "fwrite-buf", "f32-dest");
    ``provenance`` says what the bits were before demotion
    ("shadow" — a live box with backing storage, "universal-nan" — a
    dangling box treated as a true NaN, "plain" — already a double).
    ``handle`` is the shadow-store handle for "shadow" provenance.
    """

    kind: ClassVar[str] = "demotion"

    location: str = ""
    reason: str = ""             # "sink" | "call" | "printf" | "fwrite" | ...
    provenance: str = "shadow"
    handle: int = 0
    bits: int = 0                # resulting IEEE-754 bit pattern


@dataclass(slots=True)
class DegradeEvent(TraceEvent):
    """One graceful-degradation action taken by the recovery ladder.

    Emitted when a recoverable fault in the trap pipeline (an injected
    fault, an :class:`~repro.errors.ArithmeticPortError` from the
    arithmetic port, a dangling NaN-box) forced FPVM to demote the
    faulting operands to IEEE doubles and re-execute the instruction
    under vanilla semantics — or when a protective action (GC sweep,
    extern-call demotion) was skipped under fault injection.

    ``stage`` names the VM stage that faulted ("decode", "bind",
    "emulate", "gc_sweep", "shadow_lookup", "nanbox_corrupt",
    "extern_demote", "libm"); ``site_demoted`` is True when the storm
    detector permanently short-circuited this trap site.
    """

    kind: ClassVar[str] = "degrade"

    addr: int = 0
    mnemonic: str = ""
    stage: str = ""
    reason: str = ""
    injected: bool = False
    site_demoted: bool = False
    operands_demoted: int = 0


@dataclass(slots=True)
class PatchEvent(TraceEvent):
    """A binary patch installed (statically or at run time).

    ``patch_kind``: "trap-and-patch" (runtime §3.2), "static"
    (§3.3 up-front), or the static patcher's correctness-trap kinds
    "sink" / "bitwise" / "movq" / "call_demote" (§4.2); under
    conservative patching, refinement-pruned sinks that were patched
    anyway appear as "sink_pruned".
    """

    kind: ClassVar[str] = "patch"

    addr: int = 0
    mnemonic: str = ""
    patch_kind: str = ""
    source: str = "runtime"      # "runtime" | "patcher"


@dataclass(slots=True)
class ExternCallEvent(TraceEvent):
    """A call that left the simulated binary for a native external."""

    kind: ClassVar[str] = "extern_call"

    addr: int = 0                # call-site address
    name: str = ""
    cycles_spent: float = 0.0    # modeled cycles charged by the external


@dataclass(slots=True)
class RunMetaEvent(TraceEvent):
    """Run header: configuration plus the static FP-site inventory.

    ``fp_sites`` lists every trap-capable FP instruction in the text
    section as ``[addr, mnemonic]`` pairs — the denominator of the
    FlowFPX-style exception-flow coverage report.
    """

    kind: ClassVar[str] = "run_meta"

    label: str = ""
    arith: str = ""
    mode: str = ""
    platform: str = ""
    patched: bool = True
    fp_sites: list = None        # list[[addr, mnemonic]]

    def __post_init__(self) -> None:
        if self.fp_sites is None:
            self.fp_sites = []


@dataclass(slots=True)
class CacheMissEvent(TraceEvent):
    """A decode- or bind-cache miss (cold site entering the caches)."""

    kind: ClassVar[str] = "cache_miss"

    stage: str = "decode"        # "decode" | "bind"
    addr: int = 0
    mnemonic: str = ""


@dataclass(slots=True)
class JitCompileEvent(TraceEvent):
    """A trap site compiled to / fused into / evicted from the JIT.

    ``action`` is ``"compile"`` (site reached its trap threshold and
    got a specialized closure), ``"fuse"`` (adjacent patched sites
    chained into a fused shadow kernel; ``chain_len`` > 1), or
    ``"invalidate"`` (a fault or demotion tore the closure down and
    restored the interpreter step).
    """

    kind: ClassVar[str] = "jit_compile"

    addr: int = 0
    mnemonic: str = ""
    action: str = "compile"      # "compile" | "fuse" | "invalidate"
    chain_len: int = 1
    traps_seen: int = 0
    reason: str = ""


@dataclass(slots=True)
class JitHitEvent(TraceEvent):
    """One FP event absorbed by a compiled trap-site closure.

    Emitted instead of a :class:`TrapEvent`: the site emulated inline
    with no fault delivery.  ``fused`` marks execution inside a fused
    shadow kernel; ``boxes_elided`` counts intermediate results that
    stayed register-resident (no ShadowStore allocation).
    """

    kind: ClassVar[str] = "jit_hit"

    addr: int = 0
    mnemonic: str = ""
    fused: bool = False
    chain_len: int = 1
    boxes_elided: int = 0


@dataclass(slots=True)
class AnalysisEvent(TraceEvent):
    """One static-analysis run's summary (§4.2 v2).

    Emitted by the Session once per analyzed binary, after the
    analyzer/patcher step.  Carries the pass timings, the sink /
    refinement-prune counts, the context-sensitivity stats, and
    whether the report came from the content-hash cache.
    """

    kind: ClassVar[str] = "analysis"

    binary_hash: str = ""
    cache_hit: bool = False
    vsa_ms: float = 0.0
    refine_ms: float = 0.0
    instructions: int = 0
    functions: int = 0
    contexts: int = 0
    vsa_iterations: int = 0
    fp_store_sites: int = 0
    int_load_sites: int = 0
    sinks: int = 0
    pruned_sinks: int = 0
    bitwise_sites: int = 0
    movq_sites: int = 0
    extern_demote_sites: int = 0


@dataclass(slots=True)
class TraceRecordEvent(TraceEvent):
    """One hot-loop trace-recording attempt by the tracing JIT.

    ``ok`` marks a successful recording (``length`` instructions from
    the loop header back to itself); failures carry ``reason``
    ("gc-sweep" — a collection reclaimed shadow handles mid-recording
    and the trace was discarded rather than baking stale handles in,
    "too-long", "halted", "unmapped-rip").
    """

    kind: ClassVar[str] = "trace_record"

    header: int = 0
    length: int = 0
    ok: bool = True
    reason: str = ""


@dataclass(slots=True)
class TraceCompileEvent(TraceEvent):
    """A loop trace compiled, invalidated, or retired.

    ``mode`` is ``"opt"`` (machine-only optimizing emitter: registers
    and loop-carried FP values live in Python locals) or ``"chain"``
    (general fallback replaying the recorded interpreter steps).
    ``action`` is ``"compile"``, ``"invalidate"`` (fault / patch /
    deopt storm tore the trace down; ``reason`` says why), or
    ``"retire"`` (runtime detached with the trace still live —
    carries the final hit/deopt totals).
    """

    kind: ClassVar[str] = "trace_compile"

    header: int = 0
    length: int = 0
    mode: str = "opt"
    action: str = "compile"      # "compile" | "invalidate" | "retire"
    hits: int = 0
    deopts: int = 0
    reason: str = ""


@dataclass(slots=True)
class TraceDeoptEvent(TraceEvent):
    """One guard failure that deoptimized a trace to the interpreter.

    ``addr`` is the guarded instruction (execution resumes there, or at
    the branch target for post-branch exits); ``reason`` names the
    failed guard ("nonfinite", "div-zero", "cvt-range", "neg-sqrt",
    "trap-divert", "invalidated").  Ordinary loop exits through branch
    guards are side exits, not deopts, and emit no event.
    """

    kind: ClassVar[str] = "trace_deopt"

    header: int = 0
    addr: int = 0
    reason: str = ""


@dataclass(slots=True)
class BatchEvent(TraceEvent):
    """Summary of one SoA batched run (:meth:`Session.run_batch`).

    ``dispatches`` counts vectorized instruction dispatches — each
    retired one instruction for every in-batch lane — and
    ``instr_count`` is the per-lane instruction count those dispatches
    reached before the batch drained.  ``spilled_lanes`` lanes left
    lockstep (branch divergence, faults, FPVM traps, watchdogs) and
    completed on the scalar interpreter over ``spill_events`` events.
    """

    kind: ClassVar[str] = "batch"

    lanes: int = 0
    dispatches: int = 0
    spill_events: int = 0
    spilled_lanes: int = 0
    instr_count: int = 0
    wall_s: float = 0.0


@dataclass(slots=True)
class ServeJobEvent(TraceEvent):
    """One served job retired by the ``repro serve`` daemon.

    ``outcome`` is ``"ok"``, ``"error"`` (the guest binary died and
    was contained — the job still *completed*, carrying crash
    records), ``"timeout"`` (every retry exhausted its wall-clock
    budget), or ``"rejected"`` (admission control turned the job away
    with a structured 429 before it entered the queue).  ``cycles``
    stays on the modeled clock of the *served run*; ``wall_ms`` is the
    submit-to-completion daemon latency, which is serving telemetry,
    not simulation state.
    """

    kind: ClassVar[str] = "serve_job"

    job_id: int = 0
    tenant: str = ""
    workload: str = ""
    arith: str = ""
    outcome: str = "ok"          # "ok" | "error" | "timeout" | "rejected"
    shed: bool = False
    cached: bool = False
    retries: int = 0
    wall_ms: float = 0.0
    queue_depth: int = 0


@dataclass(slots=True)
class ServeShedEvent(TraceEvent):
    """One load-shedding demotion by the daemon's SLO valve.

    DegradeEvent-style accounting for the serving tier: under queue
    pressure an accepted job's arithmetic is demoted to vanilla
    precision (``from_arith`` → ``to_arith``) instead of being
    rejected — the graceful-degradation ladder applied at admission
    time.  Every shed is explained: ``queue_depth`` crossed
    ``watermark`` while staying under the hard queue limit.
    """

    kind: ClassVar[str] = "serve_shed"

    job_id: int = 0
    tenant: str = ""
    reason: str = "queue-pressure"
    queue_depth: int = 0
    watermark: int = 0
    from_arith: str = ""
    to_arith: str = "vanilla"


@dataclass(slots=True)
class ServeWorkerEvent(TraceEvent):
    """A worker-pool lifecycle action in the serving tier.

    ``action``: ``"spawn"`` (pool startup), ``"death"`` (the worker
    process died — crashed or chaos-killed — while idle or mid-job),
    ``"timeout-kill"`` (the tender killed it for blowing a job's
    wall-clock budget), ``"respawn"`` (the reaper replaced it), or
    ``"chaos-kill"`` (a serve chaos plan killed it deliberately).
    """

    kind: ClassVar[str] = "serve_worker"

    worker: int = 0
    action: str = "spawn"
    reason: str = ""
    jobs_done: int = 0


@dataclass(slots=True)
class SanitizeFlagEvent(TraceEvent):
    """One dual-path divergence flagged by the numerical sanitizer.

    The IEEE result the program sees and the high-precision shadow
    disagreed beyond the configured threshold at ``addr`` (an FP trap
    site, or a libm import address for interposed calls).  ``rel_err``
    is the symmetric relative error, ``ulps`` the ordered-bits ulp
    distance between the IEEE result and the shadow's nearest double.
    ``count`` is this site's running flag total; emission is capped
    per site, so the per-site tables in :class:`ProfilerSink` carry
    the full counts.
    """

    kind: ClassVar[str] = "sanitize_flag"

    addr: int = 0
    mnemonic: str = ""
    ieee: float = 0.0
    shadow: float = 0.0
    rel_err: float = 0.0
    ulps: int = 0
    count: int = 0


@dataclass(slots=True)
class RangeAnalysisEvent(TraceEvent):
    """One interval-range pass summary (the sanitizer's static half).

    Emitted by the Session after ``analysis/ranges.py`` runs: of
    ``checkable`` value-producing FP trap sites, ``proven`` were
    statically shown to stay within the divergence threshold and are
    exempted from dual-path instrumentation.
    """

    kind: ClassVar[str] = "range_analysis"

    binary_hash: str = ""
    cache_hit: bool = False
    ranges_ms: float = 0.0
    iterations: int = 0
    checkable: int = 0
    proven: int = 0
    prove_rate: float = 0.0
    threshold: float = 0.0


#: kind tag -> event class (the NDJSON decode registry)
EVENT_KINDS: dict[str, type] = {
    cls.kind: cls
    for cls in (TrapEvent, GCEpochEvent, CorrectnessTrapEvent,
                DemotionEvent, DegradeEvent, PatchEvent, ExternCallEvent,
                RunMetaEvent, CacheMissEvent, JitCompileEvent, JitHitEvent,
                AnalysisEvent, TraceRecordEvent, TraceCompileEvent,
                TraceDeoptEvent, BatchEvent, ServeJobEvent, ServeShedEvent,
                ServeWorkerEvent, SanitizeFlagEvent, RangeAnalysisEvent)
}


def event_from_dict(d: dict) -> TraceEvent:
    """Inverse of :meth:`TraceEvent.to_dict` (NDJSON record → event)."""
    d = dict(d)
    kind = d.pop("kind", None)
    cls = EVENT_KINDS.get(kind)
    if cls is None:
        raise ValueError(f"unknown trace event kind {kind!r}")
    return cls(**d)
