"""The aggregating profiler sink and the ``trace summarize`` report.

Consumes the event stream (live, from a ring buffer, or re-read from
an NDJSON file) and aggregates the three views the paper's evaluation
implies but never exposes:

* **per-site hot spots** — which faulting sites cost the most
  virtualization cycles (decode + bind + emulate per site);
* **per-flag trap histograms** — which MXCSR causes dominate
  (the Fig. 9 "why do we trap" dimension);
* **exception-flow coverage** — FlowFPX-style: of all static
  trap-capable FP sites in the binary, which ever trapped and which
  never did.
"""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass, field
from pathlib import Path
from typing import IO, Iterable

from repro.trace.events import (
    AnalysisEvent,
    CacheMissEvent,
    CorrectnessTrapEvent,
    DegradeEvent,
    DemotionEvent,
    ExternCallEvent,
    GCEpochEvent,
    JitCompileEvent,
    JitHitEvent,
    PatchEvent,
    RangeAnalysisEvent,
    RunMetaEvent,
    SanitizeFlagEvent,
    ServeJobEvent,
    ServeShedEvent,
    ServeWorkerEvent,
    TraceCompileEvent,
    TraceDeoptEvent,
    TraceEvent,
    TraceRecordEvent,
    TrapEvent,
    flag_names,
)
from repro.trace.sinks import read_ndjson


@dataclass
class SiteStats:
    """Aggregate for one faulting site."""

    addr: int
    mnemonic: str = ""
    traps: int = 0
    cycles: float = 0.0
    flags: Counter = field(default_factory=Counter)
    decode_hits: int = 0
    bind_hits: int = 0
    #: FP events absorbed by the site's compiled closure (no trap)
    jit_hits: int = 0

    @property
    def jit_fraction(self) -> float:
        total = self.jit_hits + self.traps
        return self.jit_hits / total if total else 0.0


@dataclass
class DivergenceStats:
    """Aggregate for one sanitizer-flagged site (FlowFPX provenance)."""

    addr: int
    mnemonic: str = ""
    flags: int = 0
    max_rel: float = 0.0
    max_ulps: int = 0
    example_ieee: float = 0.0
    example_shadow: float = 0.0


@dataclass
class LoopStats:
    """Aggregate for one traced loop (keyed by its header address).

    ``hits``/``deopts`` accumulate from the final totals the tracing
    JIT reports on ``invalidate``/``retire`` rows; ``deopt_reasons``
    histograms the individual :class:`TraceDeoptEvent` stream.
    """

    header: int
    mode: str = ""
    length: int = 0
    compiles: int = 0
    invalidations: int = 0
    record_aborts: int = 0
    hits: int = 0
    deopts: int = 0
    deopt_reasons: Counter = field(default_factory=Counter)

    @property
    def deopt_fraction(self) -> float:
        return self.deopts / self.hits if self.hits else 0.0


class ProfilerSink:
    """Aggregating sink: hot spots, flag histograms, coverage, GC."""

    def __init__(self) -> None:
        self.meta: RunMetaEvent | None = None
        self.sites: dict[int, SiteStats] = {}
        self.flag_histogram: Counter = Counter()
        self.gc_epochs: list[GCEpochEvent] = []
        self.extern_calls: Counter = Counter()
        self.extern_cycles: Counter = Counter()
        self.demotions: Counter = Counter()
        self.degrades: Counter = Counter()
        self.demoted_sites: set[int] = set()
        self.correctness: Counter = Counter()
        self.patches: Counter = Counter()
        self.cache_misses: Counter = Counter()
        self.jit_actions: Counter = Counter()
        self.jit_fused_hits = 0
        self.jit_boxes_elided = 0
        self.trace_loops: dict[int, LoopStats] = {}
        self.analyses: list[AnalysisEvent] = []
        # NSan-mode sanitizer: per-site divergence provenance and the
        # interval-range pass summaries that exempted sites from checking
        self.divergences: dict[int, DivergenceStats] = {}
        self.range_analyses: list[RangeAnalysisEvent] = []
        # serving tier: per-outcome job counts, shed/worker accounting,
        # and the submit-to-completion latency population
        self.serve_outcomes: Counter = Counter()
        self.serve_sheds: Counter = Counter()
        self.serve_worker_actions: Counter = Counter()
        self.serve_latencies_ms: list[float] = []
        self.serve_cached = 0
        self.serve_retries = 0
        self.events_seen = 0

    # ------------------------------------------------------------------ #
    def emit(self, event: TraceEvent) -> None:
        self.events_seen += 1
        if type(event) is TrapEvent:
            st = self.sites.get(event.addr)
            if st is None:
                st = self.sites[event.addr] = SiteStats(event.addr,
                                                        event.mnemonic)
            st.traps += 1
            st.cycles += event.stage_cycles
            st.decode_hits += event.decode_hit
            st.bind_hits += event.bind_hit
            for name in flag_names(event.flags):
                st.flags[name] += 1
                self.flag_histogram[name] += 1
        elif type(event) is GCEpochEvent:
            self.gc_epochs.append(event)
        elif type(event) is ExternCallEvent:
            self.extern_calls[event.name] += 1
            self.extern_cycles[event.name] += event.cycles_spent
        elif type(event) is DemotionEvent:
            self.demotions[event.reason] += 1
        elif type(event) is DegradeEvent:
            self.degrades[event.stage] += 1
            if event.site_demoted:
                self.demoted_sites.add(event.addr)
        elif type(event) is CorrectnessTrapEvent:
            self.correctness[event.trap_kind] += 1
        elif type(event) is PatchEvent:
            self.patches[event.patch_kind] += 1
        elif type(event) is JitHitEvent:
            st = self.sites.get(event.addr)
            if st is None:
                st = self.sites[event.addr] = SiteStats(event.addr,
                                                        event.mnemonic)
            st.jit_hits += 1
            if event.fused:
                self.jit_fused_hits += 1
            self.jit_boxes_elided += event.boxes_elided
        elif type(event) is JitCompileEvent:
            self.jit_actions[event.action] += 1
        elif type(event) is TraceCompileEvent:
            lp = self._loop(event.header)
            if event.action == "compile":
                lp.compiles += 1
                lp.mode = event.mode
                lp.length = event.length
            else:  # "invalidate" | "retire": final totals for this trace
                lp.hits += event.hits
                lp.deopts += event.deopts
                if event.action == "invalidate":
                    lp.invalidations += 1
        elif type(event) is TraceDeoptEvent:
            self._loop(event.header).deopt_reasons[event.reason] += 1
        elif type(event) is TraceRecordEvent:
            if not event.ok:
                self._loop(event.header).record_aborts += 1
        elif type(event) is ServeJobEvent:
            self.serve_outcomes[event.outcome] += 1
            self.serve_cached += event.cached
            self.serve_retries += event.retries
            if event.outcome != "rejected":
                self.serve_latencies_ms.append(event.wall_ms)
        elif type(event) is ServeShedEvent:
            self.serve_sheds[event.reason] += 1
        elif type(event) is ServeWorkerEvent:
            self.serve_worker_actions[event.action] += 1
        elif type(event) is CacheMissEvent:
            self.cache_misses[event.stage] += 1
        elif type(event) is SanitizeFlagEvent:
            dv = self.divergences.get(event.addr)
            if dv is None:
                dv = self.divergences[event.addr] = DivergenceStats(
                    event.addr, event.mnemonic)
            dv.flags = max(dv.flags, event.count)
            if event.rel_err >= dv.max_rel:
                dv.max_rel = event.rel_err
                dv.example_ieee = event.ieee
                dv.example_shadow = event.shadow
            dv.max_ulps = max(dv.max_ulps, event.ulps)
        elif type(event) is RangeAnalysisEvent:
            self.range_analyses.append(event)
        elif type(event) is AnalysisEvent:
            self.analyses.append(event)
        elif type(event) is RunMetaEvent:
            self.meta = event

    def _loop(self, header: int) -> LoopStats:
        lp = self.trace_loops.get(header)
        if lp is None:
            lp = self.trace_loops[header] = LoopStats(header)
        return lp

    def close(self) -> None:
        pass

    # ------------------------------------------------------------------ #
    # views                                                               #
    # ------------------------------------------------------------------ #

    @property
    def total_traps(self) -> int:
        return sum(s.traps for s in self.sites.values())

    @property
    def total_trap_cycles(self) -> float:
        return sum(s.cycles for s in self.sites.values())

    def hot_sites(self, n: int = 10) -> list[SiteStats]:
        """Top-n sites by virtualization cycles spent at the site."""
        return sorted(self.sites.values(),
                      key=lambda s: (-s.cycles, -s.jit_hits))[:n]

    def coverage(self) -> dict:
        """FlowFPX-style exception-flow coverage of static FP sites.

        Falls back to dynamic-only data (every site that trapped) when
        the trace carries no :class:`RunMetaEvent` inventory.
        """
        trapped = set(self.sites)
        if self.meta is None or not self.meta.fp_sites:
            return {"static_sites": len(trapped), "trapped": len(trapped),
                    "never_trapped": [], "fraction": 1.0 if trapped else 0.0}
        inventory = {int(addr): mn for addr, mn in self.meta.fp_sites}
        never = sorted(a for a in inventory if a not in trapped)
        n = len(inventory)
        return {
            "static_sites": n,
            "trapped": sum(1 for a in inventory if a in trapped),
            "never_trapped": [(a, inventory[a]) for a in never],
            "fraction": (sum(1 for a in inventory if a in trapped) / n
                         if n else 0.0),
        }

    def serve_summary(self) -> dict:
        """Serving-tier aggregate: jobs by outcome, sheds, latencies."""
        lats = sorted(self.serve_latencies_ms)

        def pct(p: float) -> float:
            if not lats:
                return 0.0
            return lats[min(len(lats) - 1, int(p * len(lats)))]

        return {
            "jobs": sum(self.serve_outcomes.values()),
            "outcomes": dict(self.serve_outcomes),
            "sheds": sum(self.serve_sheds.values()),
            "cached": self.serve_cached,
            "retries": self.serve_retries,
            "worker_actions": dict(self.serve_worker_actions),
            "p50_ms": pct(0.50),
            "p99_ms": pct(0.99),
        }

    def gc_summary(self) -> dict:
        eps = self.gc_epochs
        if not eps:
            return {"epochs": 0, "freed": 0, "words_scanned": 0,
                    "scan_cycles": 0.0}
        return {
            "epochs": len(eps),
            "freed": sum(e.freed for e in eps),
            "words_scanned": sum(e.words_scanned for e in eps),
            "scan_cycles": sum(e.scan_cycles for e in eps),
            "max_alive": max(e.alive_before for e in eps),
        }

    # ------------------------------------------------------------------ #
    # rendering                                                           #
    # ------------------------------------------------------------------ #

    def render(self, top: int = 10) -> str:
        out: list[str] = []
        if self.meta is not None:
            out.append(f"run: {self.meta.label or '<unnamed>'} "
                       f"[{self.meta.arith}] mode={self.meta.mode} "
                       f"platform={self.meta.platform}")
        out.append(f"events: {self.events_seen}  traps: {self.total_traps}  "
                   f"trap cycles: {self.total_trap_cycles:.0f}")

        out.append("")
        out.append(f"per-site hot spots (top {top} by virtualization cycles):")
        out.append(f"  {'addr':>10s} {'mnemonic':10s} {'traps':>8s} "
                   f"{'jit':>8s} {'jit%':>6s} {'cycles':>12s} "
                   f"{'share':>7s}  flags")
        total = self.total_trap_cycles or 1.0
        for s in self.hot_sites(top):
            fl = ",".join(f"{k}:{v}" for k, v in s.flags.most_common())
            out.append(f"  {s.addr:#10x} {s.mnemonic:10s} {s.traps:8d} "
                       f"{s.jit_hits:8d} {100 * s.jit_fraction:5.1f}% "
                       f"{s.cycles:12.0f} {100 * s.cycles / total:6.1f}%  "
                       f"{fl}")

        out.append("")
        out.append("per-flag trap histogram:")
        peak = max(self.flag_histogram.values(), default=1)
        for name, count in self.flag_histogram.most_common():
            bar = "#" * max(1, round(40 * count / peak))
            out.append(f"  {name:3s} {count:10d} {bar}")
        if not self.flag_histogram:
            out.append("  (no FP traps recorded)")

        cov = self.coverage()
        out.append("")
        out.append(f"exception-flow coverage: {cov['trapped']}/"
                   f"{cov['static_sites']} static FP sites trapped "
                   f"({100 * cov['fraction']:.0f}%)")
        for addr, mn in cov["never_trapped"]:
            out.append(f"  never trapped: {addr:#x} ({mn})")

        gc = self.gc_summary()
        out.append("")
        out.append(f"gc: {gc['epochs']} epochs, {gc['freed']} shadows freed, "
                   f"{gc['words_scanned']} words scanned, "
                   f"{gc['scan_cycles']:.0f} cycles")

        if self.correctness:
            parts = ", ".join(f"{k}×{v}"
                              for k, v in self.correctness.most_common())
            out.append(f"correctness traps: {parts}")
        if self.demotions:
            parts = ", ".join(f"{k}×{v}"
                              for k, v in self.demotions.most_common())
            out.append(f"demotions: {parts}")
        if self.degrades:
            parts = ", ".join(f"{k}×{v}"
                              for k, v in self.degrades.most_common())
            out.append(f"degradations: {parts}")
            if self.demoted_sites:
                sites = ", ".join(f"{a:#x}"
                                  for a in sorted(self.demoted_sites))
                out.append(f"storm-demoted sites: {sites}")
        if self.patches:
            parts = ", ".join(f"{k}×{v}"
                              for k, v in self.patches.most_common())
            out.append(f"patches: {parts}")
        if self.analyses:
            out.append("")
            out.append("static analysis (per analyzed binary):")
            out.append(f"  {'hash':8s} {'cache':>5s} {'ctxs':>5s} "
                       f"{'sinks':>6s} {'pruned':>7s} {'prune%':>7s} "
                       f"{'vsa ms':>8s} {'refine ms':>10s}")
            for a in self.analyses:
                cand = a.sinks + a.pruned_sinks
                rate = a.pruned_sinks / cand if cand else 0.0
                out.append(
                    f"  {a.binary_hash[:8]:8s} "
                    f"{'hit' if a.cache_hit else 'miss':>5s} "
                    f"{a.contexts:5d} {a.sinks:6d} {a.pruned_sinks:7d} "
                    f"{100 * rate:6.1f}% {a.vsa_ms:8.1f} {a.refine_ms:10.1f}")
        if self.divergences:
            out.append("")
            out.append("sanitizer divergence (per flagged site):")
            out.append(f"  {'addr':>10s} {'mnemonic':10s} {'flags':>7s} "
                       f"{'max rel':>10s} {'max ulps':>9s}  "
                       f"example (ieee vs shadow)")
            for dv in sorted(self.divergences.values(),
                             key=lambda d: (-d.flags, -d.max_rel)):
                out.append(
                    f"  {dv.addr:#10x} {dv.mnemonic:10s} {dv.flags:7d} "
                    f"{dv.max_rel:10.3g} {dv.max_ulps:9d}  "
                    f"{dv.example_ieee:.17g} vs {dv.example_shadow:.17g}")
        if self.range_analyses:
            out.append("")
            out.append("interval-range pass (per analyzed binary):")
            out.append(f"  {'hash':8s} {'cache':>5s} {'iters':>6s} "
                       f"{'sites':>6s} {'proven':>7s} {'prove%':>7s} "
                       f"{'ms':>8s}")
            for r in self.range_analyses:
                out.append(
                    f"  {r.binary_hash[:8]:8s} "
                    f"{'hit' if r.cache_hit else 'miss':>5s} "
                    f"{r.iterations:6d} {r.checkable:6d} {r.proven:7d} "
                    f"{100 * r.prove_rate:6.1f}% {r.ranges_ms:8.1f}")
        total_jit = sum(s.jit_hits for s in self.sites.values())
        if total_jit or self.jit_actions:
            parts = ", ".join(f"{k}×{v}"
                              for k, v in self.jit_actions.most_common())
            events = total_jit + self.total_traps
            rate = total_jit / events if events else 0.0
            out.append(f"jit: {total_jit} hits ({self.jit_fused_hits} fused), "
                       f"patched-site hit rate {100 * rate:.1f}%"
                       + (f", actions: {parts}" if parts else ""))
        if self.trace_loops:
            out.append("")
            out.append("traced loops (tracing JIT):")
            out.append(f"  {'header':>10s} {'mode':5s} {'len':>4s} "
                       f"{'compiles':>8s} {'hits':>10s} {'deopts':>7s} "
                       f"{'deopt%':>7s}  reasons")
            for lp in sorted(self.trace_loops.values(),
                             key=lambda l: -l.hits):
                rs = ",".join(f"{k}:{v}"
                              for k, v in lp.deopt_reasons.most_common())
                out.append(
                    f"  {lp.header:#10x} {lp.mode or '-':5s} {lp.length:4d} "
                    f"{lp.compiles:8d} {lp.hits:10d} {lp.deopts:7d} "
                    f"{100 * lp.deopt_fraction:6.1f}%  {rs}")
        if self.serve_outcomes or self.serve_worker_actions:
            sv = self.serve_summary()
            out.append("")
            parts = ", ".join(f"{k}×{v}"
                              for k, v in self.serve_outcomes.most_common())
            out.append(f"serving tier: {sv['jobs']} jobs ({parts}), "
                       f"{sv['cached']} cache hits, "
                       f"{sv['retries']} retries, {sv['sheds']} sheds")
            if self.serve_latencies_ms:
                out.append(f"  latency: p50 {sv['p50_ms']:.1f}ms "
                           f"p99 {sv['p99_ms']:.1f}ms "
                           f"over {len(self.serve_latencies_ms)} jobs")
            if self.serve_sheds:
                shed = ", ".join(f"{k}×{v}"
                                 for k, v in self.serve_sheds.most_common())
                out.append(f"  sheds by reason: {shed}")
            if self.serve_worker_actions:
                wk = ", ".join(
                    f"{k}×{v}"
                    for k, v in self.serve_worker_actions.most_common())
                out.append(f"  worker pool: {wk}")
        if self.extern_calls:
            parts = ", ".join(
                f"{name}×{n} ({self.extern_cycles[name]:.0f}cy)"
                for name, n in self.extern_calls.most_common(8))
            out.append(f"extern calls: {parts}")
        if self.cache_misses:
            parts = ", ".join(f"{k}:{v}"
                              for k, v in sorted(self.cache_misses.items()))
            out.append(f"cache misses: {parts}")
        return "\n".join(out)


def summarize_events(events: Iterable[TraceEvent], top: int = 10) -> str:
    """Aggregate an event stream and render the text report."""
    prof = ProfilerSink()
    for ev in events:
        prof.emit(ev)
    return prof.render(top)


def summarize_file(path: str | Path | IO[str], top: int = 10) -> str:
    """Render the report for a recorded NDJSON trace file."""
    return summarize_events(read_ndjson(path), top)
