"""repro.trace — structured trace/telemetry for the FPVM stack.

The paper's evaluation is all *accounting* — where cycles go per trap
(Fig. 9), how decode/bind amortize, what GC costs (Fig. 10) — but the
aggregate counters in :class:`~repro.fpvm.stats.FPVMStats` cannot say
*which* sites trap, *when* GC epochs fire, or *why* a workload slows
down.  This package adds the per-event layer: typed events emitted
from the runtime, emulator, GC, binder, and CPU through a
zero-cost-when-disabled sink protocol (every hot-path emission is
guarded by a plain ``is not None`` check, preserving the predecoded
interpreter's throughput when tracing is off).

* :mod:`repro.trace.events` — the typed event vocabulary and its
  NDJSON-round-trippable dict encoding
* :mod:`repro.trace.sinks`  — the sink protocol plus the bounded ring
  buffer, NDJSON file writer, and fan-out tee
* :mod:`repro.trace.profiler` — the aggregating sink: per-site
  hot-spot tables, per-flag trap histograms, and a FlowFPX-style
  exception-flow coverage report (which static FP sites ever trapped)

Front end: :class:`repro.session.Session` wires a sink through the
whole stack, and ``python -m repro trace summarize out.ndjson``
renders the profiler report from a recorded file.
"""

from repro.trace.events import (
    AnalysisEvent,
    CacheMissEvent,
    CorrectnessTrapEvent,
    DegradeEvent,
    DemotionEvent,
    ExternCallEvent,
    GCEpochEvent,
    JitCompileEvent,
    JitHitEvent,
    PatchEvent,
    RunMetaEvent,
    TraceEvent,
    TrapEvent,
    event_from_dict,
)
from repro.trace.sinks import (
    NDJSONSink,
    RingBufferSink,
    TeeSink,
    TraceSink,
    read_ndjson,
)
from repro.trace.profiler import ProfilerSink, summarize_events, summarize_file

__all__ = [
    "AnalysisEvent",
    "TraceEvent",
    "TrapEvent",
    "GCEpochEvent",
    "CorrectnessTrapEvent",
    "DegradeEvent",
    "DemotionEvent",
    "PatchEvent",
    "ExternCallEvent",
    "RunMetaEvent",
    "CacheMissEvent",
    "JitCompileEvent",
    "JitHitEvent",
    "event_from_dict",
    "TraceSink",
    "RingBufferSink",
    "NDJSONSink",
    "TeeSink",
    "read_ndjson",
    "ProfilerSink",
    "summarize_events",
    "summarize_file",
]
