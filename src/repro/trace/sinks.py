"""Trace sinks: where emitted events go.

The protocol is one method — ``emit(event)`` — so the hot path in the
runtime stays a ``sink is not None`` check plus a call.  ``close()``
is optional-at-runtime but implemented by every shipped sink.
"""

from __future__ import annotations

import json
from collections import deque
from pathlib import Path
from typing import IO, Iterable, Iterator, Protocol, runtime_checkable

from repro.trace.events import TraceEvent, event_from_dict


@runtime_checkable
class TraceSink(Protocol):
    """Anything that can receive trace events."""

    def emit(self, event: TraceEvent) -> None: ...  # pragma: no cover

    def close(self) -> None: ...  # pragma: no cover


class RingBufferSink:
    """Bounded in-memory sink keeping the most recent ``capacity`` events.

    Truncation semantics: once full, each new event evicts the oldest
    one and increments ``dropped``; ``events`` always returns the
    retained suffix in emission order.
    """

    def __init__(self, capacity: int = 4096) -> None:
        if capacity < 1:
            raise ValueError("ring capacity must be >= 1")
        self.capacity = capacity
        self._ring: deque[TraceEvent] = deque(maxlen=capacity)
        self.emitted = 0

    def emit(self, event: TraceEvent) -> None:
        self.emitted += 1
        self._ring.append(event)

    @property
    def dropped(self) -> int:
        return self.emitted - len(self._ring)

    @property
    def events(self) -> list[TraceEvent]:
        return list(self._ring)

    def __len__(self) -> int:
        return len(self._ring)

    def __iter__(self) -> Iterator[TraceEvent]:
        return iter(self._ring)

    def clear(self) -> None:
        self._ring.clear()
        self.emitted = 0

    def close(self) -> None:
        pass


class NDJSONSink:
    """Newline-delimited-JSON file writer (one event per line).

    Accepts a path (opened/truncated on construction) or any writable
    text file object (left open on ``close`` unless owned).
    """

    def __init__(self, path_or_file: str | Path | IO[str]) -> None:
        if isinstance(path_or_file, (str, Path)):
            self.path = Path(path_or_file)
            self._fh: IO[str] = self.path.open("w")
            self._owned = True
        else:
            self.path = None
            self._fh = path_or_file
            self._owned = False
        self.emitted = 0

    def emit(self, event: TraceEvent) -> None:
        self._fh.write(json.dumps(event.to_dict()) + "\n")
        self.emitted += 1

    def flush(self) -> None:
        self._fh.flush()

    def close(self) -> None:
        if self._owned:
            self._fh.close()
        else:
            self._fh.flush()


class TeeSink:
    """Fan one emission out to several sinks."""

    def __init__(self, *sinks: TraceSink) -> None:
        self.sinks = [s for s in sinks if s is not None]

    def emit(self, event: TraceEvent) -> None:
        for s in self.sinks:
            s.emit(event)

    def close(self) -> None:
        for s in self.sinks:
            s.close()


def read_ndjson(path_or_file: str | Path | IO[str] | Iterable[str],
                ) -> list[TraceEvent]:
    """Parse an NDJSON trace back into typed events."""
    if isinstance(path_or_file, (str, Path)):
        with Path(path_or_file).open() as fh:
            lines = fh.readlines()
    else:
        lines = list(path_or_file)
    out: list[TraceEvent] = []
    for line in lines:
        line = line.strip()
        if line:
            out.append(event_from_dict(json.loads(line)))
    return out
