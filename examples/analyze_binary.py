#!/usr/bin/env python3
"""Static analysis walkthrough: find and patch the x64 virtualization
holes in a binary (paper §4.2, Figs. 6-8).

Compiles a program that reinterprets double bits through memory (the
Fig. 6 idiom), shows that trap-and-emulate alone *corrupts* it, runs
the VSA, prints the analysis report and the patched sites, and shows
the patched binary matching native output.

Run:  python examples/analyze_binary.py
"""

from repro.analysis import analyze, apply_patches
from repro.arith import VanillaArithmetic
from repro.compiler import compile_source
from repro.fpvm import FPVM
from repro.machine.loader import load_binary
from repro.session import Session

SOURCE = """
double series = 0.0;
long main() {
    double x = 1.0;
    for (long i = 0; i < 8; i = i + 1) {
        x = x / 3.0 + 0.125;       // rounds -> NaN-boxed under FPVM
        series = series + x;
    }
    // Fig. 6: reinterpret the double's bits through memory
    long expo = (__bits(x) >> 52) & 2047;
    double mag = fabs(-x);          // andpd/xorpd: the bitwise holes
    printf("x=%.17g exponent-field=%d mag=%.17g\\n", x, expo, mag);
    return 0;
}
"""


def main() -> None:
    print("=" * 70)
    print("1. native execution")
    with Session(lambda: compile_source(SOURCE), None) as s:
        native = s.run()
    print("   " + native.stdout.strip())

    print("\n2. FPVM (trap-and-emulate only, NO static patching)")
    with Session(lambda: compile_source(SOURCE), VanillaArithmetic(),
                 patch=False) as s:
        broken = s.run()
    print("   " + broken.stdout.strip())
    print("   -> the exponent field came from a NaN-box bit pattern, "
          "not the value!"
          if broken.stdout != native.stdout else "   (unexpectedly fine)")

    print("\n3. value-set analysis")
    binary = compile_source(SOURCE)
    report = analyze(binary)
    print("   " + report.summary())
    print("   sink instructions to patch:")
    for addr in report.sinks:
        print(f"     {binary.text_map[addr]}")
    for addr in report.bitwise_sites:
        print(f"     {binary.text_map[addr]}   (bitwise hole)")

    print("\n4. patching (e9patch-style, in place, length-preserving)")
    n = apply_patches(binary, report)
    print(f"   {n} correctness traps installed")

    print("\n5. FPVM on the patched binary")
    m = load_binary(binary)
    fpvm = FPVM(VanillaArithmetic())
    fpvm.install(m)
    m.run()
    fixed = "".join(m.stdout)
    print("   " + fixed.strip())
    st = fpvm.stats
    print(f"   correctness traps taken: {st.correctness_traps}, "
          f"demotions performed: {st.correctness_demotions}")
    print(f"   matches native: {fixed == native.stdout}")
    assert fixed == native.stdout


if __name__ == "__main__":
    main()
