#!/usr/bin/env python3
"""Precision sweep on the three-body problem (paper §5.4).

Runs the chaotic three-body simulation under FPVM with MPFR at
increasing precision and with posits of several widths, comparing the
final configurations against IEEE doubles — the analyst workflow of
Fig. 1: "experiments in which only one variable — the arithmetic
system — is changed."

Run:  python examples/three_body_precision.py
"""

import re

from repro.arith import BigFloatArithmetic, PositArithmetic, VanillaArithmetic
from repro.workloads import WORKLOADS
from repro.session import Session


def finals(stdout: str):
    pos = [tuple(float(g) for g in m)
           for m in re.findall(r"body\d x=(\S+) y=(\S+)", stdout)]
    drift = float(re.search(r"drift=(\S+)", stdout).group(1))
    return pos, drift


def distance(a, b) -> float:
    return sum((ax - bx) ** 2 + (ay - by) ** 2
               for (ax, ay), (bx, by) in zip(a, b)) ** 0.5


def main() -> None:
    spec = WORKLOADS["three_body"]
    build = lambda: spec.build("bench")

    with Session(build, None) as s:
        native = s.run()
    ref_pos, ref_drift = finals(native.stdout)
    print("three-body problem, 120 leapfrog steps")
    print(f"{'arithmetic':16s} {'vs IEEE distance':>17s} "
          f"{'energy drift':>14s} {'traps':>7s}")
    print(f"{'IEEE (native)':16s} {0.0:17.3e} {ref_drift:14.3e} {'—':>7s}")

    systems = [
        VanillaArithmetic(),
        PositArithmetic(16), PositArithmetic(32), PositArithmetic(64),
        BigFloatArithmetic(64), BigFloatArithmetic(200),
        BigFloatArithmetic(1024),
    ]
    for arith in systems:
        with Session(build, arith) as s:
            res = s.run()
        pos, drift = finals(res.stdout)
        d = distance(pos, ref_pos)
        print(f"{arith.describe():16s} {d:17.3e} {drift:14.3e} "
              f"{res.fp_traps:7d}")

    print("\nreading the table:")
    print(" * vanilla sits at distance 0 — FPVM is transparent (§5.2)")
    print(" * posit16 wanders far (11 significand bits); posit32/64 and")
    print("   higher-precision MPFR all *disagree with IEEE* by similar")
    print("   amounts — for a chaotic system every arithmetic takes its")
    print("   own trajectory; precision controls energy drift, not")
    print("   agreement with the double-precision path (§5.4)")


if __name__ == "__main__":
    main()
