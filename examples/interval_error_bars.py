#!/usr/bin/env python3
"""Error bars for free: run an unmodified binary under interval
arithmetic and read off its rounding uncertainty.

The paper's Fig. 1 "analyst" path: take the production binary, swap
the arithmetic system, learn something about the computation.  With
the interval binding every shadow value is a rigorous enclosure, so
the *width* at the end of the run bounds the total effect of rounding
— a chaotic system's widths explode while a contractive one's stay at
a few ulps, with zero changes to the program.

Run:  python examples/interval_error_bars.py
"""

from repro.arith.interval import IntervalArithmetic, midpoint, width
from repro.compiler import compile_source
from repro.session import Session

CONTRACTIVE = """
long main() {
    // x -> x/3 + 1 is a contraction: rounding errors cannot grow
    double x = 1.0;
    for (long i = 0; i < 60; i = i + 1) { x = x / 3.0 + 1.0; }
    printf("%.17g\\n", x);
    return 0;
}
"""

CHAOTIC = """
double sigma = 10.0;
double rho = 28.0;
double beta = 2.6666666666666665;
long main() {
    double x = 1.0;  double y = 1.0;  double z = 1.0;
    for (long i = 0; i < STEPS; i = i + 1) {
        double dx = sigma * (y - x);
        double dy = x * (rho - z) - y;
        double dz = x * y - beta * z;
        x = x + 0.005 * dx;
        y = y + 0.005 * dy;
        z = z + 0.005 * dz;
    }
    printf("%.17g %.17g %.17g\\n", x, y, z);
    return 0;
}
"""


def max_live_width(res) -> float:
    widths = [width(res.fpvm.store.get(h))
              for h in res.fpvm.store.handles()]
    finite = [w for w in widths if w == w]  # drop NaN
    return max(finite) if finite else 0.0


def main() -> None:
    print("contractive recurrence, 60 iterations:")
    with Session(lambda: compile_source(CONTRACTIVE),
                 IntervalArithmetic()) as s:
        res = s.run()
    print(f"  midpoint result : {res.stdout.strip()}")
    print(f"  max enclosure   : {max_live_width(res):.3e}"
          f"   (a few ulps — the map squeezes rounding noise)")

    print("\nLorenz system (chaotic), growing step counts:")
    print(f"  {'steps':>6s} {'final x (midpoint)':>22s} "
          f"{'max interval width':>20s}")
    for steps in (50, 100, 200, 300):
        src = CHAOTIC.replace("STEPS", str(steps))
        with Session(lambda: compile_source(src),
                     IntervalArithmetic()) as s:
            res = s.run()
        x_mid = res.stdout.split()[0]
        print(f"  {steps:6d} {float(x_mid):22.15f} "
              f"{max_live_width(res):20.3e}")

    print("\nthe enclosure width grows exponentially with time — the")
    print("rigorous counterpart of the IEEE-vs-MPFR divergence in")
    print("Fig. 13, computed by the *same unmodified binary*.")


if __name__ == "__main__":
    main()
