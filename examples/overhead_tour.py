#!/usr/bin/env python3
"""Overhead tour: where do the cycles go when FPVM virtualizes an
instruction? (paper §5.3 and §6)

Runs one workload under FPVM+MPFR and prints the Fig. 9 component
breakdown, then re-runs it under the §6 deployment scenarios (kernel
module, hybrid runtime, hardware user->user delivery) to show how much
of the overhead is *not* intrinsic to floating point virtualization.

Run:  python examples/overhead_tour.py  [workload]
"""

import sys

from repro.arith import BigFloatArithmetic
from repro.harness.experiment import slowdown
from repro.workloads import WORKLOADS, get_workload
from repro.session import Session


def main() -> None:
    name = sys.argv[1] if len(sys.argv) > 1 else "three_body"
    spec = get_workload(name)
    build = lambda: spec.build("bench")
    print(f"workload: {name} — {spec.description}")

    with Session(build, None) as s:
        native = s.run()
    with Session(build, BigFloatArithmetic(200)) as s:
        res = s.run()
    row = res.fpvm.stats.fig9_breakdown(res.machine)

    print(f"\nFig. 9-style breakdown (cycles per virtualized "
          f"instruction, {res.fp_traps + res.correctness_traps} events):")
    for comp, val in row.items():
        if comp != "total":
            bar = "#" * int(50 * val / max(row["total"], 1))
            print(f"  {comp:22s} {val:8.0f}  {bar}")
    print(f"  {'total':22s} {row['total']:8.0f}")

    print(f"\nend-to-end slowdown under §6 deployment scenarios:")
    print(f"  {'user-level (paper prototype)':34s} "
          f"{slowdown(native, res):8.0f}x")
    for scenario, label in [
        ("kernel", "kernel module (§6.1)"),
        ("hrt", "hybrid runtime, no ring crossing"),
        ("pipeline", "hw user->user 'pipeline interrupt'"),
    ]:
        with Session(build, BigFloatArithmetic(200),
                     delivery_scenario=scenario) as s:
            r = s.run()
        print(f"  {label:34s} {slowdown(native, r):8.0f}x")

    print("\nwith ~10-cycle delivery the overhead is dominated by the "
          "arithmetic\nsystem itself — the paper's stated goal for "
          "floating point virtualization.")


if __name__ == "__main__":
    main()
