#!/usr/bin/env python3
"""Fig. 13 reproduction: the Lorenz attractor under IEEE vs FPVM.

Runs the paper's 2500-step Lorenz simulation three ways and renders an
ASCII x-z projection of the IEEE and MPFR trajectories so the
divergence (and the identical Vanilla run) is visible in a terminal.

Run:  python examples/lorenz_chaos.py  [steps]
"""

import re
import sys

from repro.arith import BigFloatArithmetic, VanillaArithmetic
from repro.workloads.lorenz import SOURCE_TEMPLATE
from repro.compiler import compile_source
from repro.session import Session


def build(steps: int):
    src = SOURCE_TEMPLATE.format(steps=steps, dt=0.005, sample=1)
    return compile_source(src)


def trajectory(stdout: str):
    pts = []
    for line in stdout.splitlines():
        m = re.search(r"x=(\S+) y=(\S+) z=(\S+)", line)
        if m and line.startswith("t="):
            pts.append((float(m.group(1)), float(m.group(3))))
    return pts


def render(ieee, mpfr, width=72, height=24) -> str:
    xs = [p[0] for p in ieee + mpfr]
    zs = [p[1] for p in ieee + mpfr]
    x0, x1 = min(xs), max(xs)
    z0, z1 = min(zs), max(zs)
    grid = [[" "] * width for _ in range(height)]

    def plot(points, ch):
        for x, z in points:
            c = int((x - x0) / (x1 - x0 + 1e-12) * (width - 1))
            r = int((z - z0) / (z1 - z0 + 1e-12) * (height - 1))
            r = height - 1 - r
            cur = grid[r][c]
            grid[r][c] = "#" if cur not in (" ", ch) else ch

    plot(ieee, ".")
    plot(mpfr, "o")
    return "\n".join("".join(row) for row in grid)


def main() -> None:
    steps = int(sys.argv[1]) if len(sys.argv) > 1 else 2500
    print(f"Lorenz, {steps} Euler steps (dt=0.005), x-z projection")
    print("  '.' = IEEE   'o' = FPVM+MPFR-200   '#' = both\n")

    with Session(lambda: build(steps), None) as s:
        native = s.run()
    with Session(lambda: build(steps), VanillaArithmetic()) as s:
        vanilla = s.run()
    with Session(lambda: build(steps), BigFloatArithmetic(200)) as s:
        mpfr = s.run()

    print(render(trajectory(native.stdout), trajectory(mpfr.stdout)))
    print()
    print("IEEE    :", native.stdout.strip().splitlines()[-1])
    print("Vanilla :", vanilla.stdout.strip().splitlines()[-1],
          "(bit-identical)" if vanilla.stdout == native.stdout
          else "(DIVERGED — bug!)")
    print("MPFR-200:", mpfr.stdout.strip().splitlines()[-1])
    assert vanilla.stdout == native.stdout
    print(f"\n{mpfr.fp_traps} instructions were emulated at 200-bit "
          f"precision; each rounding difference is a perturbation the "
          f"chaotic system amplifies exponentially (paper §5.4).")


if __name__ == "__main__":
    main()
