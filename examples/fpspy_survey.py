#!/usr/bin/env python3
"""FPSpy survey: measure a code's FP event behaviour *before*
committing to virtualization.

FPVM grew out of the authors' FPSpy tool (paper §4.1): run the
unmodified binary, record every rounding/overflow/underflow/NaN event,
change nothing.  The event rate per FP instruction predicts how hard
FPVM will have to work — compare this table with the Fig. 12
slowdowns.

Run:  python examples/fpspy_survey.py
"""

from repro.fpvm.fpspy import spy_on
from repro.workloads import WORKLOADS


def main() -> None:
    print(f"{'workload':12s} {'FP instrs':>10s} {'events':>8s} "
          f"{'rate':>7s}  event kinds")
    for name in sorted(WORKLOADS):
        rep = spy_on(lambda n=name: WORKLOADS[n].build("test"))
        kinds = ", ".join(f"{k}:{v}" for k, v in rep.by_kind.most_common(3))
        print(f"{name:12s} {rep.fp_instructions:10d} "
              f"{rep.total_events:8d} {100 * rep.event_rate:6.1f}%  {kinds}")

    print("\nhot sites for nas_cg (where FPVM would spend its time):")
    rep = spy_on(lambda: WORKLOADS["nas_cg"].build("test"))
    for rip, count in rep.hottest_sites(5):
        print(f"  {rip:#010x}  {count:6d} events")
    print("\nreading: ODE steppers round on ~3/4 of their FP")
    print("instructions; IS only rounds while generating keys; every")
    print("event in this table becomes a trap-and-emulate fault under")
    print("FPVM — multiply by ~12,000 cycles (Fig. 9) for the cost.")


if __name__ == "__main__":
    main()
