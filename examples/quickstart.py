#!/usr/bin/env python3
"""Quickstart: run an existing "binary" under FPVM with three
alternative arithmetic systems.

The program below is compiled once from mini-C into a simulated x64
binary.  We then execute it four ways — natively, and under FPVM with
Vanilla (IEEE double), MPFR-style 200-bit arbitrary precision, and
32-bit posits — without touching the binary's source, which is the
whole point of floating point virtualization.

Run:  python examples/quickstart.py
"""

from repro import compile_source
from repro.arith import BigFloatArithmetic, PositArithmetic, VanillaArithmetic
from repro.session import Session

SOURCE = """
long main() {
    // a mildly ill-conditioned recurrence: x -> x/3 + 1
    double x = 1.0;
    for (long i = 0; i < 40; i = i + 1) {
        x = x / 3.0 + 1.0;
    }
    // converges to 1.5; the last digits depend on the arithmetic
    printf("fixed point = %.17g\\n", x);
    printf("residual    = %.17g\\n", x - 1.5);
    return 0;
}
"""


def main() -> None:
    print("compiling…")
    binary = compile_source(SOURCE)
    print(f"  {len(binary.text)} instructions, "
          f"entry at {binary.entry:#x}\n")

    with Session(lambda: compile_source(SOURCE), None) as s:
        native = s.run()
    print("native (IEEE hardware)")
    print("  " + native.stdout.replace("\n", "\n  "))

    for arith in (VanillaArithmetic(), BigFloatArithmetic(200),
                  PositArithmetic(32)):
        with Session(lambda: compile_source(SOURCE), arith) as s:
            res = s.run()
        print(f"FPVM + {arith.describe()}")
        print("  " + res.stdout.replace("\n", "\n  "))
        print(f"  [{res.fp_traps} FP traps, "
              f"{res.fpvm.emulator.boxes_created} shadow values, "
              f"slowdown ~{res.cycles / max(native.cycles, 1):.0f}x "
              f"modeled]\n")

    print("note how Vanilla reproduces the native bits exactly, while "
          "MPFR-200\nand posit32 land on different final digits — the "
          "binary never changed.")


if __name__ == "__main__":
    main()
