"""Unit tests for the SoA batch engine's harness integration."""

import pytest

from repro.harness.experiment import MatrixCell, run_matrix
from repro.machine.batch import BatchMachine, LaneSpec
from repro.session import Session
from repro.workloads import WORKLOADS


def _cells(n=3, **kw):
    base = dict(workload="lorenz", size="test", arith=None)
    base.update(kw)
    return [MatrixCell(**base, label=f"c{i}") for i in range(n)]


class TestRunMatrixBatched:
    def test_batched_matches_scalar_backend(self):
        cells = _cells(3)
        scalar = run_matrix(cells, jobs=1)
        batched = run_matrix(cells, jobs=1, batch=True)
        for s, b in zip(scalar, batched):
            assert b.stdout == s.stdout
            assert b.exit_code == s.exit_code
            assert b.instr_count == s.instr_count
            assert b.fp_instr_count == s.fp_instr_count
            assert b.cycles == s.cycles

    def test_batched_fpvm_cells(self):
        cells = _cells(2, arith=("mpfr", 80))
        scalar = run_matrix(cells, jobs=1)
        batched = run_matrix(cells, jobs=1, batch=True)
        for s, b in zip(scalar, batched):
            assert b.stdout == s.stdout
            assert b.cycles == s.cycles
            assert b.fp_traps == s.fp_traps

    def test_incompatible_cells_fall_back(self):
        # different ariths cannot share a batch; results still correct
        cells = [MatrixCell(workload="lorenz", size="test", arith=None),
                 MatrixCell(workload="lorenz", size="test",
                            arith=("mpfr", 80))]
        scalar = run_matrix(cells, jobs=1)
        batched = run_matrix(cells, jobs=1, batch=True)
        for s, b in zip(scalar, batched):
            assert b.stdout == s.stdout
            assert b.cycles == s.cycles

    def test_order_preserved(self):
        cells = _cells(4)
        results = run_matrix(cells, jobs=1, batch=True)
        assert [r.cell.label for r in results] == [c.label for c in cells]


class TestBatchMachineSurface:
    def test_lane_count_and_stats(self):
        spec = WORKLOADS["lorenz"]
        bm = BatchMachine(spec.build("test"), [LaneSpec(), LaneSpec()])
        lanes = bm.run()
        assert len(lanes) == 2
        assert bm.dispatches > 0
        assert 0.0 <= bm.spill_rate <= 1.0

    def test_unknown_param_symbol_rejected(self):
        from repro.errors import MachineError

        spec = WORKLOADS["lorenz"]
        with pytest.raises(MachineError, match="unknown data symbol"):
            BatchMachine(spec.build("test"),
                         [LaneSpec(params={"nonexistent": 1.0})])

    def test_batchresult_iteration(self):
        batch = Session("lorenz", None, size="test").run_batch(
            [LaneSpec(label="a"), LaneSpec(label="b")])
        assert len(batch) == 2
        assert [lane.spec.label for lane in batch] == ["a", "b"]
        assert batch[1].spec.label == "b"
        assert batch.ok
