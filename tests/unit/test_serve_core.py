"""Unit tests for the serving tier's pieces: the job protocol, the
result cache, JobRecord's exactly-once contract, the tagged crash
writer, and the serve telemetry events."""

import io
import json
import threading

import pytest

from repro.faults.crashreport import build_crash_report, write_crash_report
from repro.serve.cache import ResultCache
from repro.serve.jobs import VANILLA, JobError, JobRequest
from repro.serve.pool import JobRecord
from repro.trace.events import (EVENT_KINDS, ServeJobEvent, ServeShedEvent,
                                ServeWorkerEvent, event_from_dict)
from repro.trace.profiler import ProfilerSink


# --------------------------------------------------------------------- #
# JobRequest wire validation                                            #
# --------------------------------------------------------------------- #

class TestJobRequest:
    def test_minimal_workload_job(self):
        req = JobRequest.from_wire({"workload": "lorenz"})
        assert req.workload == "lorenz"
        assert req.arith == VANILLA
        assert req.size == "test"

    def test_source_job(self):
        req = JobRequest.from_wire(
            {"source": "long main() { return 0; }", "arith": "mpfr:64"})
        assert req.source
        assert req.arith == ("mpfr", 64)
        assert req.arith_text == "mpfr:64"

    def test_native_arith(self):
        req = JobRequest.from_wire({"workload": "lorenz", "arith": None})
        assert req.arith is None
        assert req.arith_text == "native"
        assert not req.sheddable

    @pytest.mark.parametrize("doc", [
        "not a dict",
        {},                                        # neither workload nor src
        {"workload": "lorenz", "source": "x"},     # both
        {"workload": "no_such_workload"},
        {"workload": "lorenz", "size": "XXL"},
        {"workload": "lorenz", "arith": "martian:7"},
        {"workload": "lorenz", "stdin": 42},
        {"workload": "lorenz", "params": {"x": "one"}},
        {"workload": "lorenz", "params": {"x": True}},
        {"workload": "lorenz", "max_instructions": -5},
        {"workload": "lorenz", "max_cycles": 0},
        {"workload": "lorenz", "tenant": "x" * 65},
        {"workload": "lorenz", "trace": "yes"},
        {"workload": "lorenz", "frobnicate": 1},   # unknown field
        {"workload": "lorenz", "chaos": {"explode": 1}},
    ])
    def test_rejected_submissions(self, doc):
        with pytest.raises(JobError):
            JobRequest.from_wire(doc)

    def test_shed_to_vanilla(self):
        req = JobRequest.from_wire(
            {"workload": "lorenz", "arith": "mpfr:128", "tenant": "t1"})
        assert req.sheddable
        shed = req.shed_to_vanilla()
        assert shed.arith == VANILLA
        assert not shed.sheddable
        assert shed.tenant == "t1"           # everything else preserved
        assert req.arith == ("mpfr", 128)    # original untouched

    def test_vanilla_not_sheddable(self):
        assert not JobRequest.from_wire({"workload": "lorenz"}).sheddable

    def test_cache_key_separates_inputs(self):
        base = {"workload": "lorenz", "arith": "mpfr:64"}
        a = JobRequest.from_wire(base)
        b = JobRequest.from_wire({**base, "stdin": "xyz"})
        c = JobRequest.from_wire({**base, "max_instructions": 123})
        keys = {r.cache_key("h") for r in (a, b, c)}
        assert len(keys) == 3
        assert a.cache_key("h1") != a.cache_key("h2")

    def test_binary_key_workload_vs_source(self):
        w = JobRequest.from_wire({"workload": "lorenz", "size": "test"})
        assert w.binary_key == ("workload", "lorenz", "test")
        s1 = JobRequest.from_wire({"source": "long main() { return 0; }"})
        s2 = JobRequest.from_wire({"source": "long main() { return 1; }"})
        assert s1.binary_key != s2.binary_key

    def test_request_is_picklable(self):
        import pickle

        req = JobRequest.from_wire(
            {"workload": "lorenz", "params": {"a": 1.5}, "stdin": "hi"})
        assert pickle.loads(pickle.dumps(req)) == req


# --------------------------------------------------------------------- #
# ResultCache                                                           #
# --------------------------------------------------------------------- #

class TestResultCache:
    def test_miss_then_hit(self):
        c = ResultCache(4)
        assert c.get(("k",)) is None
        c.put(("k",), {"ok": True})
        assert c.get(("k",)) == {"ok": True}
        assert c.stats["hits"] == 1 and c.stats["misses"] == 1

    def test_lru_eviction_order(self):
        c = ResultCache(2)
        c.put(("a",), {"v": 1})
        c.put(("b",), {"v": 2})
        assert c.get(("a",))  # a is now most-recent
        c.put(("c",), {"v": 3})  # evicts b
        assert c.get(("b",)) is None
        assert c.get(("a",)) and c.get(("c",))
        assert c.stats["evictions"] == 1

    def test_returned_dict_is_a_copy(self):
        c = ResultCache(4)
        c.put(("k",), {"ok": True})
        c.get(("k",))["ok"] = False
        assert c.get(("k",))["ok"] is True

    def test_zero_capacity_disables(self):
        c = ResultCache(0)
        c.put(("k",), {"ok": True})
        assert c.get(("k",)) is None


# --------------------------------------------------------------------- #
# JobRecord: exactly-once completion                                    #
# --------------------------------------------------------------------- #

class TestJobRecord:
    def _rec(self):
        req = JobRequest.from_wire({"workload": "lorenz"})
        return JobRecord(1, req, timeout_s=1.0, max_retries=0,
                         backoff_s=0.01)

    def test_first_complete_wins(self):
        rec = self._rec()
        assert rec.complete({"ok": True, "n": 1})
        assert not rec.complete({"ok": True, "n": 2})
        assert rec.result["n"] == 1

    def test_concurrent_completes_once(self):
        rec = self._rec()
        wins = []
        barrier = threading.Barrier(8)

        def racer(i):
            barrier.wait()
            if rec.complete({"winner": i}):
                wins.append(i)

        threads = [threading.Thread(target=racer, args=(i,))
                   for i in range(8)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert len(wins) == 1
        assert rec.result["winner"] == wins[0]

    def test_callback_after_completion_fires_immediately(self):
        rec = self._rec()
        rec.complete({"ok": True})
        seen = []
        rec.add_done_callback(lambda r: seen.append(r.result))
        assert seen == [{"ok": True}]

    def test_callback_fires_exactly_once(self):
        rec = self._rec()
        seen = []
        rec.add_done_callback(lambda r: seen.append(1))
        rec.complete({"ok": True})
        rec.complete({"ok": False})
        assert seen == [1]

    def test_wait_returns_result(self):
        rec = self._rec()
        threading.Timer(0.02, rec.complete, ({"ok": True},)).start()
        assert rec.wait(5.0) == {"ok": True}


# --------------------------------------------------------------------- #
# crash records: job/tenant tagging + fsync-safe NDJSON writer          #
# --------------------------------------------------------------------- #

class TestTaggedCrashRecords:
    def test_job_id_and_tenant_on_every_record(self):
        records = build_crash_report(RuntimeError("boom"),
                                     job_id=42, tenant="acme")
        assert records
        for rec in records:
            assert rec["job_id"] == 42
            assert rec["tenant"] == "acme"

    def test_untagged_by_default(self):
        records = build_crash_report(RuntimeError("boom"))
        assert all("job_id" not in rec for rec in records)

    def test_append_mode_accumulates(self, tmp_path):
        path = tmp_path / "crash.ndjson"
        r1 = build_crash_report(RuntimeError("a"), job_id=1, tenant="t")
        r2 = build_crash_report(RuntimeError("b"), job_id=2, tenant="t")
        write_crash_report(path, r1, append=True, fsync=True)
        write_crash_report(path, r2, append=True, fsync=True)
        lines = [json.loads(x) for x in
                 path.read_text().strip().splitlines()]
        ids = {rec["job_id"] for rec in lines}
        assert ids == {1, 2}

    def test_concurrent_appends_keep_lines_whole(self, tmp_path):
        path = tmp_path / "crash.ndjson"
        lock = threading.Lock()

        def writer(i):
            recs = build_crash_report(RuntimeError(f"e{i}"), job_id=i,
                                      tenant=f"t{i}")
            with lock:
                write_crash_report(path, recs, append=True, fsync=True)

        threads = [threading.Thread(target=writer, args=(i,))
                   for i in range(8)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        lines = path.read_text().strip().splitlines()
        parsed = [json.loads(x) for x in lines]  # every line valid JSON
        assert {rec["job_id"] for rec in parsed} == set(range(8))

    def test_file_object_target(self):
        buf = io.StringIO()
        write_crash_report(buf, build_crash_report(RuntimeError("x")),
                           fsync=True)
        assert buf.getvalue().strip()


# --------------------------------------------------------------------- #
# serve telemetry events + profiler serving table                       #
# --------------------------------------------------------------------- #

class TestServeEvents:
    def test_registered_kinds(self):
        for kind in ("serve_job", "serve_shed", "serve_worker"):
            assert kind in EVENT_KINDS

    def test_round_trip(self):
        ev = ServeJobEvent(job_id=7, tenant="t", workload="lorenz",
                           arith="mpfr:64", outcome="ok", shed=True,
                           cached=False, retries=1, wall_ms=12.5,
                           queue_depth=3)
        back = event_from_dict(ev.to_dict())
        assert isinstance(back, ServeJobEvent)
        assert back.job_id == 7 and back.shed and back.retries == 1

    def test_profiler_serving_summary(self):
        prof = ProfilerSink()
        prof.emit(ServeJobEvent(job_id=1, outcome="ok", wall_ms=10.0))
        prof.emit(ServeJobEvent(job_id=2, outcome="ok", wall_ms=30.0,
                                cached=True))
        prof.emit(ServeJobEvent(job_id=3, outcome="error", wall_ms=50.0,
                                retries=2))
        prof.emit(ServeJobEvent(job_id=4, outcome="rejected"))
        prof.emit(ServeShedEvent(job_id=5, from_arith="mpfr:128"))
        prof.emit(ServeWorkerEvent(worker=0, action="chaos-kill"))
        prof.emit(ServeWorkerEvent(worker=0, action="respawn"))
        s = prof.serve_summary()
        assert s["jobs"] == 4
        assert s["outcomes"] == {"ok": 2, "error": 1, "rejected": 1}
        assert s["sheds"] == 1
        assert s["cached"] == 1
        assert s["retries"] == 2
        assert s["worker_actions"] == {"chaos-kill": 1, "respawn": 1}
        # rejected jobs never ran: excluded from the latency population
        assert s["p99_ms"] == 50.0
        assert "serving tier" in prof.render()

    def test_render_skips_serving_section_when_idle(self):
        assert "serving tier" not in ProfilerSink().render()
