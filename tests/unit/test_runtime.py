"""Unit tests for the FPVM runtime: install/uninstall, interposition,
printing, trap-and-patch, and demotion machinery."""

import math

import pytest

from repro.errors import MachineError
from repro.ieee.bits import bits_to_f64, f64_to_bits
from repro.ieee.softfloat import Flags
from repro.arith import BigFloatArithmetic, VanillaArithmetic
from repro.fpvm import FPVM
from conftest import RAX, RBX, RDI, XMM0, XMM1, asm_program, imm, lbl, mem
from repro.machine.loader import load_binary


def fp_data(pairs):
    def data(a):
        for name, val in pairs:
            a.double(name, val)
    return data


def build_divider():
    """main: xmm0 = 1/3 (traps under FPVM), then printf it."""
    def body(a):
        a.emit("movsd", XMM0, mem(disp=lbl("one")))
        a.emit("divsd", XMM0, mem(disp=lbl("three")))
        a.emit("movabs", RDI, lbl("fmt"))
        a.emit("call", lbl("printf"))
        a.emit("mov", RAX, imm(0))

    def data(a):
        a.double("one", 1.0)
        a.double("three", 3.0)
        a.asciiz("fmt", "%.17g\n")

    return asm_program(body, data=data, externs=("printf",))


class TestInstall:
    def test_install_unmasks(self):
        m = load_binary(build_divider())
        fpvm = FPVM(VanillaArithmetic())
        fpvm.install(m)
        assert m.mxcsr.masks == 0
        assert m.fp_trap_handler is not None

    def test_double_install_rejected(self):
        m = load_binary(build_divider())
        fpvm = FPVM(VanillaArithmetic())
        fpvm.install(m)
        with pytest.raises(MachineError):
            fpvm.install(m)

    def test_invalid_mode_rejected(self):
        with pytest.raises(ValueError):
            FPVM(VanillaArithmetic(), mode="jit")

    def test_uninstall_restores(self):
        m = load_binary(build_divider())
        saved_externs = dict(m.externs)
        fpvm = FPVM(VanillaArithmetic())
        fpvm.install(m)
        m.run()
        fpvm.uninstall()
        assert m.mxcsr.masks == Flags.ALL
        assert m.fp_trap_handler is None
        assert m.externs == saved_externs

    def test_uninstall_demotes_in_place(self):
        m = load_binary(build_divider())
        fpvm = FPVM(VanillaArithmetic())
        fpvm.install(m)
        m.run()
        assert fpvm.codec.is_box(m.regs.xmm_lo(0))
        fpvm.uninstall()
        assert bits_to_f64(m.regs.xmm_lo(0)) == 1.0 / 3.0


class TestTrapAndEmulate:
    def test_rounding_traps_and_boxes(self):
        m = load_binary(build_divider())
        fpvm = FPVM(VanillaArithmetic())
        fpvm.install(m)
        m.run()
        assert m.fp_trap_count == 1
        assert fpvm.stats.fp_traps == 1
        assert fpvm.stats.traps_by_flag.get("PE") == 1
        bits = m.regs.xmm_lo(0)
        assert fpvm.codec.is_box(bits)
        assert fpvm.store.get(fpvm.codec.decode(bits)) == 1.0 / 3.0

    def test_printf_demotes_box(self):
        m = load_binary(build_divider())
        fpvm = FPVM(VanillaArithmetic())
        fpvm.install(m)
        m.run()
        assert "".join(m.stdout) == "0.33333333333333331\n"
        assert fpvm.stats.printf_demotions == 1

    def test_printf_full_precision_mode(self):
        m = load_binary(build_divider())
        fpvm = FPVM(BigFloatArithmetic(200), printf_shadow_digits=30)
        fpvm.install(m)
        m.run()
        out = "".join(m.stdout)
        assert out.startswith("3.3333333333333333333333333333")

    def test_mxcsr_cleared_per_trap(self):
        m = load_binary(build_divider())
        fpvm = FPVM(VanillaArithmetic())
        fpvm.install(m)
        m.run()
        assert m.mxcsr.flags == 0


class TestMathInterposition:
    def build_sin(self):
        def body(a):
            a.emit("movsd", XMM0, mem(disp=lbl("x")))
            a.emit("divsd", XMM0, mem(disp=lbl("three")))  # box it
            a.emit("call", lbl("sin"))

        return asm_program(body, data=fp_data([("x", 1.0), ("three", 3.0)]),
                           externs=("sin",))

    def test_interposed_sin_uses_alt_arith(self):
        m = load_binary(self.build_sin())
        fpvm = FPVM(VanillaArithmetic())
        fpvm.install(m)
        m.run()
        assert fpvm.stats.libm_interposed_calls == 1
        bits = m.regs.xmm_lo(0)
        assert fpvm.store.get(fpvm.codec.decode(bits)) == \
            pytest.approx(math.sin(1.0 / 3.0), rel=1e-16)

    def test_uninterposed_extern_sees_demoted_after_patch(self):
        """tanh is deliberately NOT interposed: without patching it sees
        a NaN-box; with call-site demotion it computes correctly."""
        def body(a):
            a.emit("movsd", XMM0, mem(disp=lbl("x")))
            a.emit("divsd", XMM0, mem(disp=lbl("three")))
            a.emit("call", lbl("tanh"))

        builder = lambda: asm_program(
            body, data=fp_data([("x", 1.0), ("three", 3.0)]),
            externs=("tanh",))

        # unpatched: garbage in, NaN out
        m = load_binary(builder())
        FPVM(VanillaArithmetic()).install(m)
        m.run()
        assert math.isnan(bits_to_f64(m.regs.xmm_lo(0)))

        # patched: the §4.2 call-site demotion makes it correct
        from repro.analysis import analyze_and_patch

        b = builder()
        report = analyze_and_patch(b)
        assert any(name == "tanh" for _, name in report.extern_demote_sites)
        m = load_binary(b)
        fpvm = FPVM(VanillaArithmetic())
        fpvm.install(m)
        m.run()
        assert bits_to_f64(m.regs.xmm_lo(0)) == \
            pytest.approx(math.tanh(1.0 / 3.0), rel=1e-15)
        assert fpvm.stats.call_site_demotions >= 1


class TestTrapAndPatch:
    def build_loop(self):
        """Sum 1/3 ten times: one site trapping repeatedly."""
        def body(a):
            a.emit("movsd", XMM0, mem(disp=lbl("zero")))
            a.emit("mov", RBX, imm(10))
            a.label("top")
            a.emit("movsd", XMM1, mem(disp=lbl("one")))
            a.emit("divsd", XMM1, mem(disp=lbl("three")))
            a.emit("addsd", XMM0, XMM1)
            a.emit("dec", RBX)
            a.emit("jne", lbl("top"))
            a.emit("mov", RAX, imm(0))

        return asm_program(body, data=fp_data([("zero", 0.0), ("one", 1.0),
                                               ("three", 3.0)]))

    def test_patch_mode_same_result_fewer_faults(self):
        m1 = load_binary(self.build_loop())
        f1 = FPVM(VanillaArithmetic())
        f1.install(m1)
        m1.run()

        m2 = load_binary(self.build_loop())
        f2 = FPVM(VanillaArithmetic(), mode="trap-and-patch")
        f2.install(m2)
        m2.run()

        r1 = f1.emulator.demote_bits(m1.regs.xmm_lo(0))
        r2 = f2.emulator.demote_bits(m2.regs.xmm_lo(0))
        assert r1 == r2
        assert m2.fp_trap_count < m1.fp_trap_count
        assert f2.stats.patch_sites_installed == 2  # divsd + addsd
        assert f2.stats.patch_slow_path > 0

    def test_patch_fast_path_on_exact_ops(self):
        """Exact ops through a patched site take the no-emulation path."""
        def body(a):
            a.emit("mov", RBX, imm(5))
            a.label("top")
            a.emit("movsd", XMM0, mem(disp=lbl("x")))
            a.emit("divsd", XMM0, mem(disp=lbl("three")))  # traps: patched
            a.emit("movsd", XMM1, mem(disp=lbl("two")))
            a.emit("addsd", XMM1, mem(disp=lbl("two")))    # exact: 2+2
            a.emit("dec", RBX)
            a.emit("jne", lbl("top"))

        binary = asm_program(body, data=fp_data(
            [("x", 1.0), ("three", 3.0), ("two", 2.0)]))
        m = load_binary(binary)
        fpvm = FPVM(VanillaArithmetic(), mode="trap-and-patch")
        fpvm.install(m)
        m.run()
        # the addsd site never traps (exact): it is never patched, but
        # the divsd site is patched after its first fault
        assert fpvm.stats.patch_sites_installed == 1
        assert m.fp_trap_count == 1  # only the first divsd
        assert fpvm.stats.patch_slow_path == 4

    def test_patch_fast_path_counts(self):
        """A patched site later fed exact operands takes the fast path."""
        def body(a):
            # first pass: 1/3 (traps, gets patched)
            a.emit("movsd", XMM0, mem(disp=lbl("one")))
            a.emit("divsd", XMM0, mem(disp=lbl("three")))
            # overwrite source so the same site divides 4/2 exactly
            a.emit("movsd", XMM0, mem(disp=lbl("four")))
            a.emit("mov", RBX, imm(3))
            a.label("top")
            a.emit("movsd", XMM0, mem(disp=lbl("four")))
            a.emit("jmp", lbl("site"))
            a.label("site")
            a.emit("dec", RBX)
            a.emit("jne", lbl("top"))

        # simpler: directly exercise _on_patch_site via a crafted loop
        def body2(a):
            a.emit("mov", RBX, imm(4))
            a.label("top")
            a.emit("movsd", XMM0, mem(disp=lbl("src")))
            a.emit("divsd", XMM0, mem(disp=lbl("den")))
            a.emit("movsd", mem(disp=lbl("src")), XMM0)
            a.emit("dec", RBX)
            a.emit("jne", lbl("top"))

        binary = asm_program(body2, data=fp_data([("src", 16.0),
                                                  ("den", 2.0)]))
        m = load_binary(binary)
        fpvm = FPVM(VanillaArithmetic(), mode="trap-and-patch")
        fpvm.install(m)
        m.run()
        # 16/2=8/2=4/2=2/2: every op exact — no faults at all, and the
        # site is never even patched
        assert m.fp_trap_count == 0
        assert fpvm.stats.patch_sites_installed == 0
        assert bits_to_f64(m.memory.read(binary.symbols["src"], 8)) == 1.0


class TestDemoteAll:
    def test_demote_all_memory(self):
        def body(a):
            a.emit("movsd", XMM0, mem(disp=lbl("one")))
            a.emit("divsd", XMM0, mem(disp=lbl("three")))
            a.emit("movsd", mem(disp=lbl("out")), XMM0)

        binary = asm_program(body, data=fp_data(
            [("one", 1.0), ("three", 3.0), ("out", 0.0)]))
        m = load_binary(binary)
        fpvm = FPVM(VanillaArithmetic())
        fpvm.install(m)
        m.run()
        out_addr = binary.symbols["out"]
        assert fpvm.codec.is_box(m.memory.read(out_addr, 8))
        n = fpvm.demote_all_memory(m)
        assert n >= 2  # memory word + xmm0
        assert bits_to_f64(m.memory.read(out_addr, 8)) == 1.0 / 3.0
