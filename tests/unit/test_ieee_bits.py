"""Unit tests for the IEEE-754 bit layer."""

import math

import pytest

from repro.ieee import bits as B


class TestPackUnpack:
    def test_roundtrip_simple(self):
        for x in (0.0, 1.0, -1.0, 0.5, 1e308, 5e-324, math.pi):
            assert B.bits_to_f64(B.f64_to_bits(x)) == x

    def test_known_patterns(self):
        assert B.f64_to_bits(1.0) == 0x3FF0_0000_0000_0000
        assert B.f64_to_bits(2.0) == 0x4000_0000_0000_0000
        assert B.f64_to_bits(-2.0) == 0xC000_0000_0000_0000
        assert B.f64_to_bits(0.0) == 0
        assert B.f64_to_bits(-0.0) == B.F64_SIGN_BIT

    def test_f32_roundtrip(self):
        for x in (0.0, 1.0, -2.5, 0.1):
            import numpy as np

            assert B.bits_to_f32(B.f32_to_bits(x)) == float(np.float32(x))

    def test_infinities(self):
        assert B.f64_to_bits(math.inf) == B.F64_POS_INF
        assert B.f64_to_bits(-math.inf) == B.F64_NEG_INF


class TestClassification:
    def test_nan_taxonomy(self):
        qnan = B.F64_DEFAULT_QNAN
        snan = B.F64_EXP_MASK | 1  # exponent ones, quiet bit clear
        assert B.is_nan64(qnan) and B.is_qnan64(qnan)
        assert not B.is_snan64(qnan)
        assert B.is_nan64(snan) and B.is_snan64(snan)
        assert not B.is_qnan64(snan)

    def test_inf_is_not_nan(self):
        assert not B.is_nan64(B.F64_POS_INF)
        assert B.is_inf64(B.F64_POS_INF)
        assert B.is_inf64(B.F64_NEG_INF)

    def test_zero(self):
        assert B.is_zero64(0)
        assert B.is_zero64(B.F64_SIGN_BIT)
        assert not B.is_zero64(B.f64_to_bits(5e-324))

    def test_denormal(self):
        assert B.is_denormal64(B.f64_to_bits(5e-324))
        assert B.is_denormal64(B.f64_to_bits(-1e-310))
        assert not B.is_denormal64(B.f64_to_bits(1.0))
        assert not B.is_denormal64(0)

    def test_finite(self):
        assert B.is_finite64(B.f64_to_bits(1.0))
        assert not B.is_finite64(B.F64_POS_INF)
        assert not B.is_finite64(B.F64_DEFAULT_QNAN)

    def test_quiet_preserves_payload_and_sign(self):
        snan = B.F64_SIGN_BIT | B.F64_EXP_MASK | 0x1234
        q = B.quiet64(snan)
        assert B.is_qnan64(q)
        assert q & 0x1234 == 0x1234
        assert q & B.F64_SIGN_BIT

    def test_neg_abs_are_bit_ops(self):
        b = B.f64_to_bits(3.5)
        assert B.bits_to_f64(B.neg64(b)) == -3.5
        assert B.bits_to_f64(B.abs64(B.neg64(b))) == 3.5
        # they even "work" on NaN payloads (the §4.2 hole)
        assert B.neg64(B.F64_DEFAULT_QNAN) & B.F64_SIGN_BIT == 0

    def test_f32_classification(self):
        assert B.is_nan32(0x7FC0_0000)
        assert B.is_snan32(0x7F80_0001)
        assert B.is_inf32(0x7F80_0000)
        assert B.is_zero32(0x8000_0000)
        assert B.is_denormal32(0x0000_0001)


class TestDecompose:
    def test_normal(self):
        s, m, e = B.decompose64(B.f64_to_bits(1.0))
        assert (s, m * 2.0**e) == (0, 1.0)

    def test_negative(self):
        s, m, e = B.decompose64(B.f64_to_bits(-6.25))
        assert s == 1 and m * 2.0**e == 6.25

    def test_subnormal(self):
        s, m, e = B.decompose64(B.f64_to_bits(5e-324))
        assert (s, m, e) == (0, 1, -1074)

    def test_zero(self):
        assert B.decompose64(0)[1] == 0
        assert B.decompose64(B.F64_SIGN_BIT) == (1, 0, 0)

    def test_nan_raises(self):
        with pytest.raises(ValueError):
            B.decompose64(B.F64_DEFAULT_QNAN)
        with pytest.raises(ValueError):
            B.decompose64(B.F64_POS_INF)

    def test_compose_roundtrip(self):
        for x in (1.0, -3.75, 1e300, 2.0**-1060, 123456.0):
            s, m, e = B.decompose64(B.f64_to_bits(x))
            assert B.compose64(s, m, e) == B.f64_to_bits(x)

    def test_compose_rejects_inexact(self):
        with pytest.raises(ValueError):
            B.compose64(0, (1 << 54) + 1, 0)  # 55 significant bits

    def test_normalize_value(self):
        assert B.normalize_value(8, 0) == (1, 3)
        assert B.normalize_value(12, 2) == (3, 4)
        assert B.normalize_value(0, 7) == (0, 0)

    def test_decompose32(self):
        s, m, e = B.decompose32(B.f32_to_bits(1.5))
        assert s == 0 and m * 2.0**e == 1.5
