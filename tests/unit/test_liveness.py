"""Unit tests for the box-liveness refinement (analysis v2).

Each probe builds a tiny binary by hand so the kill/gen sets are
knowable exactly: FP stores mark global words as possibly boxed,
8-byte integer stores to a singleton global a-loc strongly kill them,
and the refinement may prune a candidate sink only when every word it
loads is dead on all paths.
"""

import pytest

from conftest import RAX, RBX, RCX, XMM0, XMM1, asm_program, imm, lbl, mem

from repro.analysis import analyze, analyze_and_patch, clear_cache
from repro.machine.loader import load_binary


def _slots_data(a):
    a.double("d1", 1.5)
    a.double("d2", 2.75)
    a.quad("slot0", 0)
    a.quad("slot1", 0)


def _int_loads(binary):
    """Addresses of the mov r64, [mem] loads, in program order."""
    from repro.isa.operands import Mem, Reg

    return [ins.addr for ins in binary.text
            if ins.mnemonic == "mov" and isinstance(ins.operands[0], Reg)
            and isinstance(ins.operands[1], Mem)]


class TestStrongKill:
    def _build(self):
        def body(a):
            a.emit("movsd", XMM0, mem(disp=lbl("d1")))
            a.emit("movsd", mem(disp=lbl("slot0")), XMM0)   # FP mark
            a.emit("movsd", mem(disp=lbl("slot1")), XMM0)   # FP mark
            a.emit("mov", mem(disp=lbl("slot0")), imm(42))  # 8-byte kill
            a.emit("mov", RAX, mem(disp=lbl("slot0")))      # dead word
            a.emit("mov", RBX, mem(disp=lbl("slot1")))      # still boxed
            a.emit("mov", RAX, imm(0))
        return asm_program(body, data=_slots_data)

    def test_killed_word_pruned_live_word_kept(self):
        binary = self._build()
        report = analyze(binary, cache=False)
        load0, load1 = _int_loads(binary)
        assert report.pruned_sinks == [load0]
        assert report.sinks == [load1]

    def test_prune_reasons_and_provenance(self):
        binary = self._build()
        report = analyze(binary, cache=False)
        load0, load1 = _int_loads(binary)
        assert report.prune_reasons[load0].startswith("pruned:")
        assert report.prune_reasons[load1].startswith("kept:")
        # the kept sink's provenance names the FP store that marked it
        fp_stores = [ins.addr for ins in binary.text
                     if ins.mnemonic == "movsd"
                     and not ins.operands[0].__class__.__name__ == "Xmm"]
        assert set(report.provenance[load1]) <= set(fp_stores)
        assert report.provenance[load1]

    def test_prune_rate_property(self):
        report = analyze(self._build(), cache=False)
        assert report.conservative_patch_count == 2
        assert report.prune_rate == pytest.approx(0.5)

    def test_conservative_patching_restores_pruned_traps(self):
        binary = self._build()
        report = analyze_and_patch(binary, conservative=True, cache=False)
        for addr in report.sinks + report.pruned_sinks:
            assert binary.instruction_at(addr).mnemonic == "fpvm_trap"

    def test_default_patching_leaves_pruned_sites_alone(self):
        binary = self._build()
        report = analyze_and_patch(binary, cache=False)
        for addr in report.pruned_sinks:
            assert binary.instruction_at(addr).mnemonic == "mov"
        for addr in report.sinks:
            assert binary.instruction_at(addr).mnemonic == "fpvm_trap"


class TestNoKill:
    def test_narrow_store_does_not_kill(self):
        """A 4-byte store cannot clear an 8-byte NaN-box."""
        def body(a):
            a.emit("movsd", XMM0, mem(disp=lbl("d1")))
            a.emit("movsd", mem(disp=lbl("slot0")), XMM0)
            a.emit("mov", mem(disp=lbl("slot0"), size=4), imm(42))
            a.emit("mov", RAX, mem(disp=lbl("slot0")))
            a.emit("mov", RAX, imm(0))
        binary = asm_program(body, data=_slots_data)
        report = analyze(binary, cache=False)
        assert report.pruned_sinks == []
        assert report.sinks == _int_loads(binary)

    def test_conditional_kill_does_not_prune(self):
        """The kill happens on one path only; the join keeps may-box."""
        def body(a):
            a.emit("movsd", XMM0, mem(disp=lbl("d1")))
            a.emit("movsd", mem(disp=lbl("slot0")), XMM0)
            a.emit("mov", RCX, mem(disp=lbl("flag")))
            a.emit("cmp", RCX, imm(0))
            a.emit("jne", lbl("skip"))
            a.emit("mov", mem(disp=lbl("slot0")), imm(42))
            a.label("skip")
            a.emit("mov", RAX, mem(disp=lbl("slot0")))
            a.emit("mov", RAX, imm(0))

        def data(a):
            _slots_data(a)
            a.quad("flag", 1)

        binary = asm_program(body, data=data)
        report = analyze(binary, cache=False)
        load = _int_loads(binary)[-1]
        assert load in report.sinks
        assert load not in report.pruned_sinks

    def test_fp_store_after_kill_resurrects(self):
        """kill → FP store → load: the word may be boxed again."""
        def body(a):
            a.emit("movsd", XMM0, mem(disp=lbl("d1")))
            a.emit("movsd", mem(disp=lbl("slot0")), XMM0)
            a.emit("mov", mem(disp=lbl("slot0")), imm(42))
            a.emit("movsd", XMM1, mem(disp=lbl("d2")))
            a.emit("movsd", mem(disp=lbl("slot0")), XMM1)
            a.emit("mov", RAX, mem(disp=lbl("slot0")))
            a.emit("mov", RAX, imm(0))
        binary = asm_program(body, data=_slots_data)
        report = analyze(binary, cache=False)
        assert report.pruned_sinks == []
        assert _int_loads(binary)[-1] in report.sinks

    def test_callee_fp_write_resurrects(self):
        """A call between the kill and the load re-marks the word via
        the callee's transitive FP-write summary."""
        def body(a):
            a.emit("movsd", XMM0, mem(disp=lbl("d1")))
            a.emit("movsd", mem(disp=lbl("slot0")), XMM0)
            a.emit("mov", mem(disp=lbl("slot0")), imm(42))
            a.emit("call", lbl("refill"))
            a.emit("mov", RAX, mem(disp=lbl("slot0")))
            a.emit("mov", RAX, imm(0))
            a.emit("ret")
            a.label("refill")
            a.emit("movsd", XMM1, mem(disp=lbl("d2")))
            a.emit("movsd", mem(disp=lbl("slot0")), XMM1)
        binary = asm_program(body, data=_slots_data)
        report = analyze(binary, cache=False)
        assert report.pruned_sinks == []
        assert _int_loads(binary)[0] in report.sinks

    def test_kill_inside_callee_is_not_trusted(self):
        """Kills inside a callee do NOT propagate to the ret site: the
        ret-site state is the caller's in-state unioned with the
        callee's FP-write summary, so a callee-side int overwrite
        leaves the caller's load conservatively patched (sound — the
        refinement only sharpens when it can prove deadness locally)."""
        def body(a):
            a.emit("movsd", XMM0, mem(disp=lbl("d1")))
            a.emit("movsd", mem(disp=lbl("slot0")), XMM0)
            a.emit("call", lbl("clobber"))
            a.emit("mov", RAX, mem(disp=lbl("slot0")))
            a.emit("mov", RAX, imm(0))
            a.emit("ret")
            a.label("clobber")
            a.emit("mov", mem(disp=lbl("slot0")), imm(42))
        binary = asm_program(body, data=_slots_data)
        report = analyze(binary, cache=False)
        assert report.pruned_sinks == []
        assert report.sinks == [_int_loads(binary)[0]]


class TestPrunedBinaryRuns:
    def test_pruned_binary_executes_identically(self):
        """The pruned program still runs and computes the same result
        natively (pruning only removes traps, never instructions)."""
        def body(a):
            a.emit("movsd", XMM0, mem(disp=lbl("d1")))
            a.emit("movsd", mem(disp=lbl("slot0")), XMM0)
            a.emit("mov", mem(disp=lbl("slot0")), imm(42))
            a.emit("mov", RAX, mem(disp=lbl("slot0")))
            a.emit("mov", RAX, imm(0))

        plain = asm_program(body, data=_slots_data)
        m1 = load_binary(plain)
        m1.run()

        patched = asm_program(body, data=_slots_data)
        analyze_and_patch(patched, cache=False)
        m2 = load_binary(patched)
        m2.run()
        assert m2.exit_code == m1.exit_code
        assert m2.memory.read(plain.symbols["slot0"], 8) == \
            m1.memory.read(plain.symbols["slot0"], 8)


class TestReportCache:
    def test_content_hash_cache_shares_reports(self):
        from repro.analysis import CACHE_STATS
        from repro.compiler import compile_source

        src = """
        double g;
        long main() { g = 1.5; printf("%.17g\\n", g * 2.0); return 0; }
        """
        clear_cache()
        r1 = analyze(compile_source(src))
        fresh = r1.cache_hit          # False on the miss that built it
        r2 = analyze(compile_source(src))
        assert not fresh
        assert r2.cache_hit
        assert r2 is r1
        assert CACHE_STATS["hits"] == 1 and CACHE_STATS["misses"] == 1
        clear_cache()

    def test_different_binaries_different_hashes(self):
        from repro.compiler import compile_source

        a = compile_source("long main() { return 1; }")
        b = compile_source("long main() { return 2; }")
        assert a.content_hash() != b.content_hash()
