"""Unit tests for the experiment harness and FPVM statistics."""

import pytest

from repro.arith import VanillaArithmetic
from repro.compiler import compile_source
from repro.fpvm.stats import FPVMStats
from repro.harness.experiment import slowdown
from repro.fpvm.runtime import FPVMConfig
from repro.session import Session
from repro.harness.platforms import PLATFORMS
from repro.ieee.softfloat import Flags
from repro.machine.costmodel import P7220

SRC = """
long main() {
    double x = 0.0;
    for (long i = 0; i < 8; i = i + 1) { x = x + 0.1; }
    printf("%.6f\\n", x);
    return 3;
}
"""


class TestSessionNative:
    def test_result_fields(self):
        r = Session(lambda: compile_source(SRC), None).run()
        assert r.exit_code == 3
        assert r.stdout == "0.800000\n"
        assert r.instr_count > 0 and r.cycles > 0
        assert r.fp_traps == 0
        assert r.fpvm is None

    def test_accepts_prebuilt_binary(self):
        binary = compile_source(SRC)
        r = Session(binary, None).run()
        assert r.exit_code == 3

    def test_platform_parameter(self):
        r1 = Session(lambda: compile_source(SRC), None).run()
        r2 = Session(lambda: compile_source(SRC), None,
                     platform=PLATFORMS["7220"]).run()
        assert r1.instr_count == r2.instr_count
        assert r2.machine.cost.platform is P7220

    def test_seconds_modeled(self):
        r = Session(lambda: compile_source(SRC), None).run()
        assert r.seconds_modeled == pytest.approx(
            r.cycles / (r.machine.cost.platform.ghz * 1e9))


class TestSessionFPVM:
    def test_fields(self):
        r = Session(lambda: compile_source(SRC),
                    VanillaArithmetic()).run()
        assert r.stdout == "0.800000\n"
        assert r.fp_traps > 0
        assert r.fpvm is not None
        assert r.analysis is not None
        assert "kernel_delivery" in r.buckets

    def test_final_gc(self):
        r = Session(lambda: compile_source(SRC),
                    VanillaArithmetic()).run(final_gc=True)
        assert len(r.fpvm.gc.passes) >= 1
        r2 = Session(lambda: compile_source(SRC), VanillaArithmetic(),
                     config=FPVMConfig(gc_epoch_cycles=10**12),
                     ).run(final_gc=False)
        assert len(r2.fpvm.gc.passes) == 0

    def test_slowdown_helper(self):
        nat = Session(lambda: compile_source(SRC), None).run()
        virt = Session(lambda: compile_source(SRC),
                       VanillaArithmetic()).run()
        s = slowdown(nat, virt)
        assert s == virt.cycles / nat.cycles > 1


class TestFPVMStats:
    def test_record_flags(self):
        st = FPVMStats()
        st.record_trap_flags(Flags.PE | Flags.UE)
        st.record_trap_flags(Flags.PE)
        assert st.fp_traps == 2
        assert st.traps_by_flag == {"PE": 2, "UE": 1}

    def test_breakdown_no_events(self):
        from repro.machine.loader import load_binary

        st = FPVMStats()
        m = load_binary(compile_source(SRC))
        row = st.fig9_breakdown(m)
        assert all(v == 0.0 for v in row.values())

    def test_breakdown_averages(self):
        r = Session(lambda: compile_source(SRC),
                    VanillaArithmetic()).run()
        row = r.fpvm.stats.fig9_breakdown(r.machine)
        plat = r.machine.cost.platform
        events = r.fp_traps + r.correctness_traps
        assert row["kernel overhead"] == pytest.approx(
            r.buckets["kernel_delivery"] / events)
        assert row["total"] == pytest.approx(sum(
            v for k, v in row.items() if k != "total"))
        assert row["hardware overhead"] <= plat.hw_trap_cycles


class TestAsmConvenience:
    def test_module_level_operands(self):
        from repro.asm import imm, lbl, mem, rax, xmm3

        assert rax.name == "rax"
        assert xmm3.index == 3
        assert imm(5).value == 5
        assert lbl("x").name == "x"
        m = mem(rax, disp=-8, index=rax, scale=4, size=4)
        assert (m.base, m.disp, m.scale, m.size) == ("rax", -8, 4, 4)
