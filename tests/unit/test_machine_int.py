"""Unit tests for integer instruction semantics on the simulated CPU."""

import pytest

from repro.errors import MachineError
from conftest import (
    EAX, RAX, RBX, RCX, RDX, RDI,
    imm, lbl, mem, run_program,
)


class TestMovLea:
    def test_mov_imm(self):
        m = run_program(lambda a: a.emit("mov", RAX, imm(42)))
        assert m.regs.get_gpr("rax") == 42

    def test_movabs_64bit(self):
        m = run_program(lambda a: a.emit("movabs", RAX,
                                         imm(0x1122334455667788)))
        assert m.regs.get_gpr("rax") == 0x1122334455667788

    def test_mov_mem_roundtrip(self):
        def body(a):
            a.emit("movabs", RAX, lbl("buf"))
            a.emit("mov", RCX, imm(0xBEEF))
            a.emit("mov", mem(RAX), RCX)
            a.emit("mov", RBX, mem(RAX))

        def data(a):
            a.space("buf", 16)

        m = run_program(body, data=data)
        assert m.regs.get_gpr("rbx") == 0xBEEF

    def test_mov_32bit_zero_extends(self):
        def body(a):
            a.emit("movabs", RAX, imm(0xFFFF_FFFF_FFFF_FFFF))
            a.emit("mov", EAX, imm(5))

        m = run_program(body)
        assert m.regs.get_gpr("rax") == 5

    def test_lea(self):
        def body(a):
            a.emit("mov", RBX, imm(0x100))
            a.emit("mov", RCX, imm(4))
            a.emit("lea", RAX, mem(RBX, disp=8, index=RCX, scale=8))

        m = run_program(body)
        assert m.regs.get_gpr("rax") == 0x100 + 8 + 32

    def test_movzx_movsx(self):
        def body(a):
            a.emit("movabs", RAX, lbl("b"))
            a.emit("movzx", RBX, mem(RAX, size=1))
            a.emit("movsx", RCX, mem(RAX, size=1))

        def data(a):
            a.quad("b", 0xF0)  # -16 as i8

        m = run_program(body, data=data)
        assert m.regs.get_gpr("rbx") == 0xF0
        assert m.regs.get_gpr("rcx") == 0xF0 | (0xFFFFFFFFFFFFFF << 8)

    def test_xchg(self):
        def body(a):
            a.emit("mov", RAX, imm(1))
            a.emit("mov", RBX, imm(2))
            a.emit("xchg", RAX, RBX)

        m = run_program(body)
        assert m.regs.get_gpr("rax") == 2 and m.regs.get_gpr("rbx") == 1


class TestALU:
    def test_add_sub(self):
        def body(a):
            a.emit("mov", RAX, imm(10))
            a.emit("add", RAX, imm(5))
            a.emit("sub", RAX, imm(3))

        assert run_program(body).regs.get_gpr("rax") == 12

    def test_add_wraps_and_sets_cf(self):
        def body(a):
            a.emit("movabs", RAX, imm(0xFFFF_FFFF_FFFF_FFFF))
            a.emit("add", RAX, imm(1))
            a.emit("setb", Rcl := __import__("repro.isa.operands",
                                            fromlist=["Reg"]).Reg("cl"))

        m = run_program(body)
        assert m.regs.get_gpr("rax") == 0
        assert m.regs.get_gpr("rcx") & 0xFF == 1

    def test_signed_overflow_sets_of(self):
        def body(a):
            a.emit("movabs", RAX, imm(0x7FFF_FFFF_FFFF_FFFF))
            a.emit("add", RAX, imm(1))

        m = run_program(body)
        assert m.regs.of == 1 and m.regs.sf == 1

    def test_logic_ops(self):
        def body(a):
            a.emit("mov", RAX, imm(0b1100))
            a.emit("and", RAX, imm(0b1010))
            a.emit("or", RAX, imm(0b0001))
            a.emit("xor", RAX, imm(0b1111))

        assert run_program(body).regs.get_gpr("rax") == 0b0110

    def test_not_neg(self):
        def body(a):
            a.emit("mov", RAX, imm(5))
            a.emit("neg", RAX)
            a.emit("mov", RBX, imm(0))
            a.emit("not", RBX)

        m = run_program(body)
        assert m.regs.get_gpr("rax") == (-5) & ((1 << 64) - 1)
        assert m.regs.get_gpr("rbx") == (1 << 64) - 1

    def test_inc_dec_preserve_cf(self):
        def body(a):
            a.emit("movabs", RAX, imm(0xFFFF_FFFF_FFFF_FFFF))
            a.emit("add", RAX, imm(1))  # sets CF
            a.emit("inc", RAX)

        m = run_program(body)
        assert m.regs.cf == 1  # inc must not clear carry

    def test_shifts(self):
        def body(a):
            a.emit("mov", RAX, imm(1))
            a.emit("shl", RAX, imm(10))
            a.emit("mov", RBX, imm(1024))
            a.emit("shr", RBX, imm(3))
            a.emit("movabs", RCX, imm((-64) & ((1 << 64) - 1)))
            a.emit("sar", RCX, imm(2))

        m = run_program(body)
        assert m.regs.get_gpr("rax") == 1024
        assert m.regs.get_gpr("rbx") == 128
        assert m.regs.get_gpr("rcx") == (-16) & ((1 << 64) - 1)

    def test_imul(self):
        def body(a):
            a.emit("mov", RAX, imm(7))
            a.emit("mov", RCX, imm(-3 & ((1 << 64) - 1)))
            a.emit("imul", RAX, RCX)

        assert run_program(body).regs.get_gpr("rax") == \
            (-21) & ((1 << 64) - 1)

    def test_idiv(self):
        def body(a):
            a.emit("movabs", RAX, imm((-17) & ((1 << 64) - 1)))
            a.emit("cqo")
            a.emit("mov", RCX, imm(5))
            a.emit("idiv", RCX)

        m = run_program(body)
        # C semantics: -17 / 5 == -3 rem -2
        assert m.regs.get_gpr("rax") == (-3) & ((1 << 64) - 1)
        assert m.regs.get_gpr("rdx") == (-2) & ((1 << 64) - 1)

    def test_idiv_by_zero_raises(self):
        def body(a):
            a.emit("mov", RAX, imm(1))
            a.emit("cqo")
            a.emit("mov", RCX, imm(0))
            a.emit("idiv", RCX)

        with pytest.raises(MachineError):
            run_program(body)


class TestControlFlow:
    @pytest.mark.parametrize("jcc,a,b,taken", [
        ("je", 1, 1, True), ("je", 1, 2, False),
        ("jne", 1, 2, True), ("jl", -1, 1, True), ("jl", 1, -1, False),
        ("jle", 2, 2, True), ("jg", 3, 2, True), ("jge", 2, 2, True),
        ("jb", 1, 2, True), ("jb", -1, 1, False),  # unsigned!
        ("jbe", 2, 2, True), ("ja", 2, 1, True), ("jae", 1, 2, False),
    ])
    def test_conditional_jumps(self, jcc, a, b, taken):
        def body(asm):
            asm.emit("movabs", RAX, imm(a & ((1 << 64) - 1)))
            asm.emit("movabs", RCX, imm(b & ((1 << 64) - 1)))
            asm.emit("cmp", RAX, RCX)
            asm.emit(jcc, lbl("yes"))
            asm.emit("mov", RBX, imm(0))
            asm.emit("jmp", lbl("out"))
            asm.label("yes")
            asm.emit("mov", RBX, imm(1))
            asm.label("out")

        m = run_program(body)
        assert m.regs.get_gpr("rbx") == (1 if taken else 0)

    def test_loop(self):
        def body(a):
            a.emit("mov", RAX, imm(0))
            a.emit("mov", RCX, imm(10))
            a.label("top")
            a.emit("add", RAX, RCX)
            a.emit("dec", RCX)
            a.emit("jne", lbl("top"))

        assert run_program(body).regs.get_gpr("rax") == 55

    def test_call_ret(self):
        def body(a):
            a.emit("call", lbl("five"))
            a.emit("add", RAX, imm(1))
            a.emit("ret")
            a.label("five")
            a.emit("mov", RAX, imm(5))

        # "five" falls through to the trailing ret added by the helper;
        # easier: define explicitly
        from conftest import asm_program
        from repro.machine.loader import load_binary
        from repro.asm import Assembler

        asm = Assembler()
        asm.label("main")
        asm.emit("call", lbl("five"))
        asm.emit("add", RAX, imm(1))
        asm.emit("ret")
        asm.label("five")
        asm.emit("mov", RAX, imm(5))
        asm.emit("ret")
        m = load_binary(asm.assemble())
        m.run()
        assert m.exit_code == 6

    def test_exit_code_from_rax(self):
        def body(a):
            a.emit("mov", RAX, imm(3))

        assert run_program(body).exit_code == 3

    def test_push_pop(self):
        def body(a):
            a.emit("mov", RAX, imm(0x77))
            a.emit("push", RAX)
            a.emit("mov", RAX, imm(0))
            a.emit("pop", RBX)

        assert run_program(body).regs.get_gpr("rbx") == 0x77

    def test_setcc_and_cmov(self):
        def body(a):
            a.emit("mov", RAX, imm(2))
            a.emit("cmp", RAX, imm(2))
            a.emit("sete", __import__("repro.isa.operands",
                                      fromlist=["Reg"]).Reg("al"))
            a.emit("mov", RBX, imm(9))
            a.emit("mov", RCX, imm(7))
            a.emit("cmp", RBX, RCX)
            a.emit("cmovg", RCX, RBX)

        m = run_program(body)
        assert m.regs.get_gpr("rax") & 0xFF == 1
        assert m.regs.get_gpr("rcx") == 9

    def test_ud2_raises(self):
        with pytest.raises(MachineError):
            run_program(lambda a: a.emit("ud2"))

    def test_int3_raises(self):
        with pytest.raises(MachineError):
            run_program(lambda a: a.emit("int3"))

    def test_hlt(self):
        def body(a):
            a.emit("mov", RAX, imm(9))
            a.emit("hlt")

        assert run_program(body).exit_code == 9

    def test_instruction_budget(self):
        from repro.asm import Assembler
        from repro.machine.loader import load_binary

        a = Assembler()
        a.label("main")
        a.label("spin")
        a.emit("jmp", lbl("spin"))
        m = load_binary(a.assemble())
        with pytest.raises(MachineError):
            m.run(max_instructions=100)
