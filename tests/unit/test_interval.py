"""Unit + property tests for the interval arithmetic binding.

The load-bearing law is *containment*: the exact real result of an
operation on members of the input intervals lies inside the output
interval.  We check it against exact Fraction arithmetic.
"""

import math
from fractions import Fraction

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.ieee.bits import bits_to_f64, f64_to_bits
from repro.arith.interface import Ordering
from repro.arith.interval import (
    NAI,
    IntervalArithmetic,
    midpoint,
    width,
)
from repro.session import Session

A = IntervalArithmetic()


def F(x: float):
    return A.from_f64_bits(f64_to_bits(x))


class TestBasics:
    def test_degenerate_from_double(self):
        v = F(2.5)
        assert v == (2.5, 2.5)
        assert width(v) == 0.0
        assert bits_to_f64(A.to_f64_bits(v)) == 2.5

    def test_ops_widen_outward(self):
        s = A.add(F(0.1), F(0.2))
        assert s[0] < 0.1 + 0.2 < s[1]
        assert width(s) > 0

    def test_sub_uses_opposite_endpoints(self):
        a, b = (1.0, 2.0), (0.25, 0.5)
        r = A.sub(a, b)
        assert r[0] <= 0.5 and r[1] >= 1.75

    def test_mul_sign_cases(self):
        assert A.mul((-2.0, 3.0), (-1.0, 4.0))[0] <= -8.0
        assert A.mul((-2.0, 3.0), (-1.0, 4.0))[1] >= 12.0
        r = A.mul((-2.0, -1.0), (-3.0, -2.0))
        assert r[0] <= 2.0 and r[1] >= 6.0

    def test_div_through_zero_is_nai(self):
        assert A.is_nan(A.div(F(1.0), (-1.0, 1.0)))
        assert not A.is_nan(A.div(F(1.0), (0.5, 2.0)))

    def test_sqrt_clamps_small_negative_lo(self):
        r = A.sqrt((-1e-30, 4.0))
        assert r[0] <= 0.0 <= r[1] and r[1] >= 2.0
        assert A.is_nan(A.sqrt((-2.0, -1.0)))

    def test_abs_straddling(self):
        assert A.abs((-3.0, 2.0)) == (0.0, 3.0)
        assert A.abs((-3.0, -2.0)) == (2.0, 3.0)

    def test_neg_swaps(self):
        assert A.neg((1.0, 2.0)) == (-2.0, -1.0)


class TestTrig:
    def test_sin_interior_maximum(self):
        r = A.sin((1.0, 2.5))  # pi/2 inside
        assert r[1] == 1.0
        assert r[0] <= min(math.sin(1.0), math.sin(2.5))

    def test_cos_interior_minimum(self):
        r = A.cos((3.0, 3.3))  # pi inside
        assert r[0] == -1.0

    def test_wide_interval_full_range(self):
        assert A.sin((0.0, 100.0)) == (-1.0, 1.0)

    def test_narrow_monotone_piece(self):
        r = A.sin((0.1, 0.2))
        assert r[0] <= math.sin(0.1) and r[1] >= math.sin(0.2)
        assert width(r) < 0.11

    def test_tan_pole_is_nai(self):
        assert A.is_nan(A.tan((1.0, 2.0)))  # pi/2 inside
        assert not A.is_nan(A.tan((0.1, 0.4)))


class TestContainmentProperty:
    finite = st.floats(min_value=-1e12, max_value=1e12, allow_nan=False)

    @given(finite, finite, finite, finite,
           st.sampled_from(["add", "sub", "mul"]))
    @settings(max_examples=200, deadline=None)
    def test_exact_result_contained(self, a, b, c, d, op):
        ia = (min(a, b), max(a, b))
        ib = (min(c, d), max(c, d))
        r = getattr(A, op)(ia, ib)
        # pick exact representative points: the endpoints themselves
        for x in ia:
            for y in ib:
                if op == "add":
                    exact = Fraction(x) + Fraction(y)
                elif op == "sub":
                    exact = Fraction(x) - Fraction(y)
                else:
                    exact = Fraction(x) * Fraction(y)
                assert Fraction(r[0]) <= exact <= Fraction(r[1])

    @given(st.floats(min_value=0.0, max_value=1e300, allow_nan=False))
    @settings(max_examples=100, deadline=None)
    def test_sqrt_containment(self, x):
        r = A.sqrt((x, x))
        s = math.sqrt(x)
        assert r[0] <= s <= r[1]

    @given(st.integers(min_value=-100, max_value=100))
    @settings(max_examples=60, deadline=None)
    def test_int_roundtrip(self, i):
        v = A.from_i64(i & ((1 << 64) - 1))
        assert midpoint(v) == float(i)
        assert A.to_i64(v, True) == i & ((1 << 64) - 1)


class TestComparisons:
    def test_certain_orderings(self):
        assert A.compare((1.0, 2.0), (3.0, 4.0)) is Ordering.LT
        assert A.compare((5.0, 6.0), (3.0, 4.0)) is Ordering.GT
        assert A.compare(F(2.0), F(2.0)) is Ordering.EQ

    def test_overlap_decided_by_midpoint(self):
        assert A.compare((1.0, 3.0), (2.0, 6.0)) is Ordering.LT
        assert A.compare((2.0, 6.0), (1.0, 3.0)) is Ordering.GT

    def test_nai_unordered(self):
        assert A.compare(NAI, F(1.0)) is Ordering.UNORDERED


class TestUnderFPVM:
    def test_validates_and_reports_width(self):
        from repro.arith import VanillaArithmetic
        from repro.compiler import compile_source
        
        src = """
        long main() {
            double x = 1.0;
            for (long i = 0; i < 25; i = i + 1) { x = x / 3.0 + 1.0; }
            printf("%.17g\\n", x);
            return 0;
        }
        """
        native = Session(lambda: compile_source(src), None).run()
        res = Session(lambda: compile_source(src), IntervalArithmetic()).run()
        # midpoint printing agrees with the native value to ~width
        assert abs(float(res.stdout) - float(native.stdout)) < 1e-12
        # and live shadow values carry genuine error bars
        widths = [width(v) for h in res.fpvm.store.handles()
                  for v in [res.fpvm.store.get(h)]]
        assert widths and max(widths) > 0

    def test_lorenz_interval_width_grows(self):
        """Chaos made visible: the rigorous enclosure widens along the
        trajectory — FPVM turns the binary into its own error analysis."""
        from repro.workloads import WORKLOADS

        spec = WORKLOADS["lorenz"]
        res = Session(lambda: spec.build("test"), IntervalArithmetic()).run()
        widths = [width(res.fpvm.store.get(h))
                  for h in res.fpvm.store.handles()]
        finite_widths = [w for w in widths if not math.isnan(w)]
        assert finite_widths
        assert max(finite_widths) > 1e-13  # grown well past one ulp
