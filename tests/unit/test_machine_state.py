"""Unit tests for memory, register file, and MXCSR."""

import pytest

from repro.errors import MemoryFault
from repro.ieee.softfloat import Flags
from repro.machine.memory import Memory
from repro.machine.mxcsr import MXCSR
from repro.machine.regfile import RegFile


class TestMemory:
    def test_map_and_rw(self):
        m = Memory()
        m.map("seg", 0x1000, 0x100)
        m.write(0x1000, 8, 0xDEADBEEF)
        assert m.read(0x1000, 8) == 0xDEADBEEF
        m.write(0x10F8, 4, 0x12345678)
        assert m.read(0x10F8, 4) == 0x12345678

    def test_overlap_rejected(self):
        m = Memory()
        m.map("a", 0x1000, 0x100)
        with pytest.raises(MemoryFault):
            m.map("b", 0x10F0, 0x100)

    def test_unmapped_access_faults(self):
        m = Memory()
        m.map("a", 0x1000, 0x100)
        with pytest.raises(MemoryFault):
            m.read(0x2000, 8)
        with pytest.raises(MemoryFault):
            m.read(0x10FC, 8)  # straddles the end

    def test_readonly_write_faults(self):
        m = Memory()
        m.map("ro", 0x1000, 0x100, writable=False, data=b"abc")
        assert m.read_bytes(0x1000, 3) == b"abc"
        with pytest.raises(MemoryFault):
            m.write(0x1000, 1, 0)

    def test_byte_ops(self):
        m = Memory()
        m.map("a", 0, 64)
        m.write_bytes(8, b"hello\x00")
        assert m.read_cstr(8) == "hello"
        assert m.read_bytes(8, 5) == b"hello"

    def test_unterminated_cstr(self):
        m = Memory()
        m.map("a", 0, 16, data=b"x" * 16)
        with pytest.raises(MemoryFault):
            m.read_cstr(0)

    def test_writable_words(self):
        m = Memory()
        m.map("rw", 0, 32)
        m.map("ro", 0x100, 32, writable=False)
        m.write(8, 8, 0xABCD)
        words = dict(m.writable_words())
        assert words[8] == 0xABCD
        assert len(words) == 4  # only the rw segment
        assert m.writable_ranges() == [(0, 32)]

    def test_segment_named(self):
        m = Memory()
        m.map("heap", 0x100, 16)
        assert m.segment_named("heap").base == 0x100
        with pytest.raises(KeyError):
            m.segment_named("nope")

    def test_little_endian(self):
        m = Memory()
        m.map("a", 0, 16)
        m.write(0, 4, 0x0403_0201)
        assert m.read_bytes(0, 4) == b"\x01\x02\x03\x04"


class TestRegFile:
    def test_gpr_64(self):
        r = RegFile()
        r.set_gpr("rax", 0x1122334455667788)
        assert r.get_gpr("rax") == 0x1122334455667788

    def test_32bit_write_zero_extends(self):
        r = RegFile()
        r.set_gpr("rax", 0xFFFF_FFFF_FFFF_FFFF)
        r.set_gpr("eax", 0x1234)
        assert r.get_gpr("rax") == 0x1234

    def test_8bit_write_merges(self):
        r = RegFile()
        r.set_gpr("rax", 0xAABB)
        r.set_gpr("al", 0xCC)
        assert r.get_gpr("rax") == 0xAACC
        assert r.get_gpr("al") == 0xCC

    def test_16bit_read(self):
        r = RegFile()
        r.set_gpr("rax", 0x12345678)
        assert r.get_gpr("ax") == 0x5678

    def test_xmm_lanes(self):
        r = RegFile()
        r.set_xmm(3, 0x11, 0x22)
        assert r.xmm_lo(3) == 0x11 and r.xmm_hi(3) == 0x22
        r.set_xmm_lo(3, 0x33)
        assert (r.xmm_lo(3), r.xmm_hi(3)) == (0x33, 0x22)

    def test_compare_flags(self):
        r = RegFile()
        r.of = r.sf = 1
        r.set_compare_flags(1, 1, 1)
        assert (r.zf, r.pf, r.cf, r.of, r.sf) == (1, 1, 1, 0, 0)

    def test_snapshot(self):
        r = RegFile()
        r.set_gpr("rbx", 7)
        snap = r.snapshot()
        r.set_gpr("rbx", 9)
        assert snap["gpr"]["rbx"] == 7


class TestMXCSR:
    def test_default_masked(self):
        x = MXCSR()
        assert x.masks == Flags.ALL and x.flags == 0
        assert x.record(Flags.PE) == 0  # masked: no fault
        assert x.flags == Flags.PE  # but sticky

    def test_unmasked_faults(self):
        x = MXCSR()
        x.unmask_all()
        assert x.record(Flags.PE | Flags.IE) == Flags.PE | Flags.IE

    def test_sticky_accumulation(self):
        x = MXCSR()
        x.record(Flags.PE)
        x.record(Flags.IE)
        assert x.flags == Flags.PE | Flags.IE
        x.clear_flags()
        assert x.flags == 0

    def test_partial_masks(self):
        x = MXCSR()
        x.set_masks(Flags.ALL & ~Flags.IE)  # only invalid unmasked
        assert x.record(Flags.PE) == 0
        assert x.record(Flags.IE | Flags.PE) == Flags.IE

    def test_packed_value_roundtrip(self):
        x = MXCSR()
        x.flags = Flags.PE
        x.masks = Flags.IE | Flags.OE
        packed = x.value
        y = MXCSR()
        y.value = packed
        assert y.flags == Flags.PE and y.masks == Flags.IE | Flags.OE
