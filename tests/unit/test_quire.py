"""Unit tests for the posit quire (exact dot-product accumulator)."""

import math

import pytest

from repro.ieee.bits import bits_to_f64, f64_to_bits
from repro.arith.posit import PositArithmetic, PositEnv
from repro.arith.posit.quire import Quire, quire_dot


def P(p, x: float) -> int:
    return p.from_f64_bits(f64_to_bits(x))


def V(p, w: int) -> float:
    return bits_to_f64(p.to_f64_bits(w))


class TestQuire:
    p = PositArithmetic(16, 1)

    def test_single_add_roundtrip(self):
        q = Quire(self.p.env)
        w = P(self.p, 2.5)
        assert q.add(w).to_posit() == w

    def test_sum_of_many_is_exactly_rounded(self):
        """The quire's whole point: sum first exactly, round once —
        versus posit16 adds rounding at every step."""
        env = self.p.env
        third = self.p.div(P(self.p, 1.0), P(self.p, 3.0))
        n = 300
        q = Quire(env)
        stepwise = P(self.p, 0.0)
        for _ in range(n):
            q.add(third)
            stepwise = self.p.add(stepwise, third)
        exact_sum = n * V(self.p, third)
        quire_err = abs(V(self.p, q.to_posit()) - exact_sum)
        step_err = abs(V(self.p, stepwise) - exact_sum)
        assert quire_err <= step_err
        assert quire_err / exact_sum < 2e-3  # one posit16 rounding

    def test_dot_product_exact(self):
        env = self.p.env
        xs = [P(self.p, v) for v in (1.5, -2.0, 0.25, 8.0)]
        ys = [P(self.p, v) for v in (2.0, 0.5, -4.0, 0.125)]
        got = V(self.p, quire_dot(env, xs, ys))
        assert got == 1.5 * 2 - 2 * 0.5 + 0.25 * -4 + 8 * 0.125

    def test_cancellation_is_exact(self):
        """Products that cancel exactly yield exactly zero — stepwise
        posit arithmetic generally cannot do this for scaled values."""
        env = PositEnv(16, 1)
        p = self.p
        q = Quire(env)
        q.add_product(P(p, 1000.0), P(p, 0.001953125))  # 2^-9 exact
        q.sub_product(P(p, 1000.0), P(p, 0.001953125))
        assert q.to_posit() == 0

    def test_nar_poisons(self):
        q = Quire(self.p.env)
        q.add(P(self.p, 1.0))
        q.add(self.p.nar)
        assert q.is_nar
        assert q.to_posit() == self.p.env.nar

    def test_clear(self):
        q = Quire(self.p.env)
        q.add(P(self.p, 5.0))
        q.clear()
        assert q.to_posit() == 0 and not q.is_nar

    def test_extreme_scale_products_exact(self):
        """minpos * minpos and maxpos * maxpos both fit the quire."""
        env = PositEnv(8, 2)
        p8 = PositArithmetic(8, 2)
        q = Quire(env)
        q.add_product(env.minpos, env.minpos)
        q.add_product(env.maxpos, env.maxpos)
        # dominated by maxpos^2, which saturates back to maxpos
        assert q.to_posit() == env.maxpos
        del p8

    def test_quire_beats_naive_on_ill_conditioned_dot(self):
        env = PositEnv(32, 2)
        p = PositArithmetic(32, 2)
        xs = [P(p, v) for v in (1e8, 1.0, -1e8)]
        ys = [P(p, v) for v in (1.0, 1.0, 1.0)]
        exact = 1.0
        quire_val = V(p, quire_dot(env, xs, ys))
        naive = P(p, 0.0)
        for a, b in zip(xs, ys):
            naive = p.add(naive, p.mul(a, b))
        assert quire_val == pytest.approx(exact, rel=1e-6)
        # the naive sum lost the +1 in the big-magnitude additions
        assert abs(V(p, naive) - exact) >= abs(quire_val - exact)
