"""Unit tests for bigfloat transcendental functions."""

import math

import pytest

from repro.arith.bigfloat import BigFloatContext
from repro.arith.bigfloat import transcendental as T

HP = BigFloatContext(200)


def close(fn, ref, x, rel=1e-14):
    got = fn(HP, HP.from_float(x)).to_float()
    want = ref(x)
    assert got == pytest.approx(want, rel=rel, abs=1e-300), (x, got, want)


class TestExpLog:
    @pytest.mark.parametrize("x", [0.1, 1.0, -1.0, 10.0, -20.0, 700.0,
                                   1e-10, 0.6931471805599453])
    def test_exp(self, x):
        close(T.bf_exp, math.exp, x)

    def test_exp_specials(self):
        assert T.bf_exp(HP, HP.zero()).to_float() == 1.0
        assert T.bf_exp(HP, HP.inf()).is_inf
        assert T.bf_exp(HP, HP.inf(1)).is_zero
        assert T.bf_exp(HP, HP.nan()).is_nan
        # magnitude beyond reduction range saturates by sign
        assert T.bf_exp(HP, HP.from_float(1e30)).is_inf
        assert T.bf_exp(HP, HP.from_float(-1e30)).is_zero

    @pytest.mark.parametrize("x", [0.5, 1.0, 2.0, 10.0, 1e10, 1e-10, 3.0])
    def test_log(self, x):
        close(T.bf_log, math.log, x)

    def test_log_specials(self):
        assert T.bf_log(HP, HP.zero()).is_inf
        assert T.bf_log(HP, HP.zero()).sign == 1
        assert T.bf_log(HP, HP.from_float(-1.0)).is_nan
        assert T.bf_log(HP, HP.inf()).is_inf
        assert T.bf_log(HP, HP.from_int(1)).to_float() == 0.0

    @pytest.mark.parametrize("x", [2.0, 8.0, 10.0, 0.5, 3.7])
    def test_log2_log10(self, x):
        close(T.bf_log2, math.log2, x)
        close(T.bf_log10, math.log10, x)

    def test_exp_log_inverse_at_high_precision(self):
        x = HP.from_float(1.2345)
        back = T.bf_log(HP, T.bf_exp(HP, x))
        diff = HP.sub(back, x)
        # agreement far beyond double precision
        assert abs(diff.to_float()) < 1e-55


class TestTrig:
    @pytest.mark.parametrize("x", [0.1, 1.0, -1.0, 3.141592653589793,
                                   6.4, 100.0, 0.5235987755982988, -50.0])
    def test_sin_cos_tan(self, x):
        close(T.bf_sin, math.sin, x, rel=1e-13)
        close(T.bf_cos, math.cos, x, rel=1e-13)
        if abs(math.cos(x)) > 0.01:
            close(T.bf_tan, math.tan, x, rel=1e-12)

    def test_trig_specials(self):
        assert T.bf_sin(HP, HP.zero()).is_zero
        assert T.bf_cos(HP, HP.zero()).to_float() == 1.0
        assert T.bf_sin(HP, HP.inf()).is_nan
        assert T.bf_cos(HP, HP.nan()).is_nan

    def test_pythagorean_identity_high_precision(self):
        x = HP.from_float(0.777)
        s = T.bf_sin(HP, x)
        c = T.bf_cos(HP, x)
        one = HP.add(HP.mul(s, s), HP.mul(c, c))
        assert abs(HP.sub(one, HP.from_int(1)).to_float()) < 1e-55


class TestInverseTrig:
    @pytest.mark.parametrize("x", [0.0, 0.1, -0.5, 0.99, 1.0, -1.0])
    def test_asin_acos(self, x):
        close(T.bf_asin, math.asin, x, rel=1e-12)
        close(T.bf_acos, math.acos, x, rel=1e-12)

    def test_domain_errors(self):
        assert T.bf_asin(HP, HP.from_float(1.5)).is_nan
        assert T.bf_acos(HP, HP.from_float(-2.0)).is_nan

    @pytest.mark.parametrize("x", [0.0, 0.1, -1.0, 5.0, -1000.0, 1e10])
    def test_atan(self, x):
        close(T.bf_atan, math.atan, x, rel=1e-13)

    def test_atan_inf(self):
        assert T.bf_atan(HP, HP.inf()).to_float() == \
            pytest.approx(math.pi / 2, rel=1e-15)
        assert T.bf_atan(HP, HP.inf(1)).to_float() == \
            pytest.approx(-math.pi / 2, rel=1e-15)

    @pytest.mark.parametrize("y,x", [(1, 1), (1, -1), (-1, 1), (-1, -1),
                                     (0.3, 2.0), (-5.0, 0.1), (2.0, -0.1)])
    def test_atan2(self, y, x):
        got = T.bf_atan2(HP, HP.from_float(y), HP.from_float(x)).to_float()
        assert got == pytest.approx(math.atan2(y, x), rel=1e-13)

    def test_atan2_axes(self):
        f = HP.from_float
        assert T.bf_atan2(HP, f(0.0), f(1.0)).is_zero
        assert T.bf_atan2(HP, f(0.0), f(-1.0)).to_float() == \
            pytest.approx(math.pi)
        assert T.bf_atan2(HP, f(1.0), f(0.0)).to_float() == \
            pytest.approx(math.pi / 2)
        assert T.bf_atan2(HP, f(1.0), HP.inf()).is_zero


class TestPowFmod:
    @pytest.mark.parametrize("a,b", [(2.0, 10.0), (2.0, -3.0), (1.5, 40.0),
                                     (9.0, 0.5), (10.0, -0.25),
                                     (0.9, 1000.0)])
    def test_pow(self, a, b):
        got = T.bf_pow(HP, HP.from_float(a), HP.from_float(b)).to_float()
        assert got == pytest.approx(a ** b, rel=1e-12)

    def test_pow_specials(self):
        f = HP.from_float
        assert T.bf_pow(HP, f(2.0), HP.zero()).to_float() == 1.0
        assert T.bf_pow(HP, HP.nan(), HP.zero()).to_float() == 1.0
        assert T.bf_pow(HP, f(-2.0), f(0.5)).is_nan
        assert T.bf_pow(HP, f(-2.0), f(3.0)).to_float() == -8.0
        assert T.bf_pow(HP, HP.zero(), f(-1.0)).is_inf
        assert T.bf_pow(HP, f(2.0), HP.inf()).is_inf
        assert T.bf_pow(HP, f(0.5), HP.inf()).is_zero

    def test_pow_integer_exact_path(self):
        # 3^7 must be exact (repeated squaring, not exp/log)
        got = T.bf_pow(HP, HP.from_int(3), HP.from_int(7))
        assert HP.cmp(got, HP.from_int(2187)) == 0

    @pytest.mark.parametrize("a,b", [(7.5, 2.0), (-7.5, 2.0), (10.3, 3.1),
                                     (1e10, 7.0), (0.5, 0.3)])
    def test_fmod(self, a, b):
        got = T.bf_fmod(HP, HP.from_float(a), HP.from_float(b)).to_float()
        assert got == pytest.approx(math.fmod(a, b), rel=1e-13, abs=1e-300)

    def test_fmod_exactness(self):
        # fmod is computed exactly in integer arithmetic: 1 % 0.125 == 0
        got = T.bf_fmod(HP, HP.from_int(1), HP.from_float(0.125))
        assert got.is_zero

    def test_fmod_specials(self):
        f = HP.from_float
        assert T.bf_fmod(HP, f(1.0), HP.zero()).is_nan
        assert T.bf_fmod(HP, HP.inf(), f(1.0)).is_nan
        assert T.bf_fmod(HP, f(3.0), HP.inf()).to_float() == 3.0


class TestConstants:
    def test_cached_constants_accuracy(self):
        w = 256
        assert T.pi_fixed(w) / 2**w == pytest.approx(math.pi, rel=1e-15)
        assert T.ln2_fixed(w) / 2**w == pytest.approx(math.log(2), rel=1e-15)
        assert T.ln10_fixed(w) / 2**w == pytest.approx(math.log(10),
                                                       rel=1e-15)

    def test_constants_cached(self):
        a = T.pi_fixed(128)
        b = T.pi_fixed(128)
        assert a is b or a == b

    def test_precision_scales(self):
        # 1000-bit pi agrees with 1100-bit pi in the top 990 bits
        hi = T.pi_fixed(1100) >> 100
        lo = T.pi_fixed(1000)
        assert abs(hi - lo) <= 2
