"""Unit tests for the bigfloat (MPFR-substitute) core arithmetic."""

import math

import pytest

from repro.ieee.bits import f64_to_bits
from repro.arith.bigfloat import BF, BigFloatArithmetic, BigFloatContext
from repro.arith.bigfloat.number import RNDD, RNDN, RNDU, RNDZ
from repro.arith.interface import Ordering


class TestConstruction:
    def test_from_float_roundtrip(self):
        ctx = BigFloatContext(53)
        for x in (1.0, -0.5, 0.1, 1e300, 5e-324, -1e-310, math.pi):
            assert ctx.from_float(x).to_float() == x

    def test_specials(self):
        ctx = BigFloatContext(64)
        assert ctx.from_float(math.nan).is_nan
        assert ctx.from_float(math.inf).is_inf
        assert ctx.from_float(-math.inf).sign == 1
        z = ctx.from_float(-0.0)
        assert z.is_zero and z.sign == 1
        assert math.copysign(1.0, z.to_float()) == -1.0

    def test_from_int(self):
        ctx = BigFloatContext(64)
        assert ctx.from_int(12345).to_float() == 12345.0
        assert ctx.from_int(-7).to_float() == -7.0
        assert ctx.from_int(0).is_zero

    def test_precision_rounding_on_entry(self):
        ctx = BigFloatContext(8)
        v = ctx.from_int((1 << 20) + 1)  # 21 significant bits
        assert v.mant.bit_length() == 8
        assert v.to_float() == float(1 << 20)  # RNE dropped the +1

    def test_min_precision(self):
        with pytest.raises(ValueError):
            BigFloatContext(1)
        with pytest.raises(ValueError):
            BigFloatContext(53, rounding="bogus")


class TestRoundingModes:
    def test_directed_modes(self):
        third_down = BigFloatContext(53, RNDD).div(
            BigFloatContext(53).from_int(1), BigFloatContext(53).from_int(3))
        third_up = BigFloatContext(53, RNDU).div(
            BigFloatContext(53).from_int(1), BigFloatContext(53).from_int(3))
        third_zero = BigFloatContext(53, RNDZ).div(
            BigFloatContext(53).from_int(1), BigFloatContext(53).from_int(3))
        assert third_down.to_float() < third_up.to_float()
        assert third_zero.to_float() == third_down.to_float()  # positive

    def test_rne_ties_to_even(self):
        ctx = BigFloatContext(4)
        # 9/2 = 4.5 -> tie between 4-bit mantissas: rounds to even
        v = ctx.round_mant(0, 0b10001, 0)  # 17 needs 5 bits
        assert v.mant == 0b1000 and v.exp == 1  # 16, even mantissa
        v = ctx.round_mant(0, 0b10011, 0)  # 19 -> 20 (tie up to even)
        assert v.mant * 2**v.exp == 20


class TestArithmeticAtDoublePrecision:
    ctx = BigFloatContext(53)

    def check(self, op, a, b, expect):
        r = getattr(self.ctx, op)(self.ctx.from_float(a),
                                  self.ctx.from_float(b))
        if math.isnan(expect):
            assert r.is_nan
        else:
            assert r.to_float() == expect

    def test_add_cases(self):
        self.check("add", 0.1, 0.2, 0.1 + 0.2)
        self.check("add", 1e308, 1e308, math.inf)
        self.check("add", math.inf, -math.inf, math.nan)
        self.check("add", 1e20, -1e20, 0.0)

    def test_far_apart_operands_sticky(self):
        self.check("add", 1.0, 1e-300, 1.0 + 1e-300)
        self.check("add", 1.0, -1e-300, 1.0 - 1e-300)
        self.check("sub", 1e300, 1.0, 1e300 - 1.0)

    def test_mul_cases(self):
        self.check("mul", 0.1, 0.1, 0.1 * 0.1)
        self.check("mul", 0.0, math.inf, math.nan)
        self.check("mul", -2.0, 3.0, -6.0)

    def test_div_cases(self):
        self.check("div", 1.0, 3.0, 1.0 / 3.0)
        self.check("div", 1.0, 0.0, math.inf)
        self.check("div", -1.0, 0.0, -math.inf)
        self.check("div", 0.0, 0.0, math.nan)
        self.check("div", math.inf, math.inf, math.nan)

    def test_sqrt(self):
        ctx = self.ctx
        assert ctx.sqrt(ctx.from_float(2.0)).to_float() == math.sqrt(2.0)
        assert ctx.sqrt(ctx.from_float(-1.0)).is_nan
        assert ctx.sqrt(ctx.from_float(-0.0)).is_zero

    def test_fma_single_rounding(self):
        ctx = self.ctx
        a = ctx.from_float(1.0 + 2.0**-30)
        r = ctx.fma(a, a, ctx.from_float(-1.0))
        assert r.to_float() == 2.0**-29 + 2.0**-60

    def test_neg_abs(self):
        ctx = self.ctx
        assert ctx.neg(ctx.from_float(2.0)).to_float() == -2.0
        assert ctx.abs(ctx.from_float(-3.0)).to_float() == 3.0
        assert ctx.neg(ctx.from_float(0.0)).sign == 1


class TestHighPrecision:
    def test_more_precise_than_double(self):
        hp = BigFloatContext(200)
        third = hp.div(hp.from_int(1), hp.from_int(3))
        # 3 * (1/3 at 200 bits) is closer to 1 than the double version
        back = hp.mul(third, hp.from_int(3))
        err_hp = abs(back.to_float() - 1.0)
        err_dbl = abs(3.0 * (1.0 / 3.0) - 1.0)
        assert err_hp <= err_dbl
        # and the 200-bit value differs from the 53-bit value
        assert hp.cmp(third, hp.from_float(1.0 / 3.0)) != 0

    def test_exponent_unbounded(self):
        hp = BigFloatContext(64)
        big = hp.from_mant_exp(0, 1, 100000)
        sq = hp.mul(big, big)
        # no overflow in the representation: value is exactly 2^200000
        assert sq.exp + sq.mant.bit_length() - 1 == 200000
        assert sq.to_float() == math.inf  # but demotion saturates


class TestCompare:
    ctx = BigFloatContext(80)

    def c(self, a, b):
        return self.ctx.cmp(self.ctx.from_float(a), self.ctx.from_float(b))

    def test_ordering(self):
        assert self.c(1.0, 2.0) == -1
        assert self.c(2.0, 1.0) == 1
        assert self.c(2.0, 2.0) == 0
        assert self.c(-1.0, 1.0) == -1
        assert self.c(-1.0, -2.0) == 1

    def test_zeros_equal(self):
        assert self.c(0.0, -0.0) == 0

    def test_nan_unordered(self):
        assert self.c(math.nan, 1.0) is None

    def test_inf(self):
        assert self.c(math.inf, 1e308) == 1
        assert self.c(-math.inf, -1e308) == -1
        assert self.c(math.inf, math.inf) == 0

    def test_same_scale_different_mantissa(self):
        a = self.ctx.from_float(1.5)
        b = self.ctx.from_float(1.25)
        assert self.ctx.cmp(a, b) == 1


class TestIntegral:
    ctx = BigFloatContext(64)

    def test_to_int_modes(self):
        f = self.ctx.from_float
        assert self.ctx.to_int(f(2.7), "trunc") == 2
        assert self.ctx.to_int(f(-2.7), "trunc") == -2
        assert self.ctx.to_int(f(2.5), "nearest") == 2
        assert self.ctx.to_int(f(3.5), "nearest") == 4
        assert self.ctx.to_int(f(-2.1), "floor") == -3
        assert self.ctx.to_int(f(-2.9), "ceil") == -2
        assert self.ctx.to_int(f(math.nan), "trunc") is None

    def test_round_to_integral(self):
        f = self.ctx.from_float
        assert self.ctx.round_to_integral(f(2.5), 0).to_float() == 2.0
        assert self.ctx.round_to_integral(f(-2.5), 1).to_float() == -3.0
        assert self.ctx.round_to_integral(f(2.5), 2).to_float() == 3.0
        assert self.ctx.round_to_integral(f(-2.5), 3).to_float() == -2.0
        z = self.ctx.round_to_integral(f(-0.25), 3)
        assert z.is_zero and z.sign == 1


class TestDecimal:
    def test_decimal_rendering(self):
        ctx = BigFloatContext(200)
        third = ctx.div(ctx.from_int(1), ctx.from_int(3))
        s = ctx.to_decimal_str(third, 20)
        assert s == "3.3333333333333333333e-01"

    def test_decimal_exact_values(self):
        ctx = BigFloatContext(64)
        assert ctx.to_decimal_str(ctx.from_int(1), 5) == "1.0000e+00"
        assert ctx.to_decimal_str(ctx.from_float(-2.5), 3) == "-2.50e+00"
        assert ctx.to_decimal_str(ctx.zero()) == "0"
        assert ctx.to_decimal_str(ctx.nan()) == "nan"
        assert ctx.to_decimal_str(ctx.inf(1)) == "-inf"


class TestAdapter:
    def test_interface_costs_match_paper_footnote9(self):
        a = BigFloatArithmetic(200)
        assert a.op_cycles("add") == pytest.approx(93, abs=5)
        assert a.op_cycles("div") == pytest.approx(2175, rel=0.02)

    def test_cost_grows_with_precision(self):
        lo = BigFloatArithmetic(64)
        hi = BigFloatArithmetic(4096)
        assert hi.op_cycles("div") > 100 * lo.op_cycles("div")
        assert hi.op_cycles("add") < hi.op_cycles("div")

    def test_conversions(self):
        a = BigFloatArithmetic(200)
        v = a.from_f64_bits(f64_to_bits(2.5))
        assert a.to_f64_bits(v) == f64_to_bits(2.5)
        assert a.to_i64(a.from_i64(-5 & ((1 << 64) - 1)), True) == \
            (-5) & ((1 << 64) - 1)
        assert a.to_i32(v, True) == 2
        assert a.compare(v, a.from_i64(3)) is Ordering.LT
        assert a.is_negative(a.neg(v))
        assert a.is_zero(a.sub(v, v))

    def test_min_max_x64_semantics(self):
        a = BigFloatArithmetic(64)
        x, y = a.from_i64(1), a.from_i64(2)
        assert a.min(x, y) is x
        assert a.max(x, y) is y
        assert a.min(a.from_f64_bits(f64_to_bits(math.nan)), y) is y
