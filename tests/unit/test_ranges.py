"""Unit tests for the interval-range abstract interpretation
(analysis/ranges.py): the domain laws, the fixpoint/widening behavior
on compiled loops, and the proven/exact site classification."""

import math

from repro.analysis.ranges import (FBOT, FTOP, FPState, Rng,
                                   analyze_ranges, clear_ranges_cache,
                                   _join_fp)
from repro.compiler import compile_source

INF = math.inf


def build(src):
    clear_ranges_cache()
    return compile_source(src)


# --------------------------------------------------------------------------- #
# domain laws                                                                  #
# --------------------------------------------------------------------------- #

class TestJoin:
    def test_bot_is_identity_top_absorbs(self):
        r = Rng(1.0, 2.0, 0.0)
        assert _join_fp(FBOT, r) is r
        assert _join_fp(r, FBOT) is r
        assert _join_fp(FTOP, r) is FTOP
        assert _join_fp(r, FTOP) is FTOP

    def test_hull_and_max_err(self):
        j = _join_fp(Rng(1.0, 2.0, 0.0), Rng(-1.0, 1.5, 1e-10))
        assert (j.lo, j.hi, j.err) == (-1.0, 2.0, 1e-10)

    def test_widen_blows_growing_bounds_to_inf(self):
        a = Rng(0.0, 1.0, 0.0)
        b = Rng(0.0, 2.0, 1e-12)
        j = _join_fp(a, b, widen=True)
        assert j.hi == INF and j.lo == 0.0 and j.err == INF

    def test_widen_is_stable_on_equal_values(self):
        a = Rng(0.0, 1.0, 1e-16)
        assert _join_fp(a, Rng(0.0, 1.0, 1e-16), widen=True) == a

    def test_integral_survives_only_if_both(self):
        a = Rng(0.0, 1.0, 0.0, True)
        assert _join_fp(a, Rng(2.0, 3.0, 0.0, True)).integral
        assert not _join_fp(a, Rng(0.5, 1.0, 0.0, False)).integral


class TestFPState:
    def test_absent_stack_slot_is_unknown(self):
        st = FPState((FTOP,) * 16, ())
        assert st.stack_get(("s", 0x400000, -8)) is FTOP

    def test_join_drops_one_sided_slots(self):
        key = ("s", 0x400000, -8)
        a = FPState((FTOP,) * 16, ((key, Rng(1.0, 1.0, 0.0)),))
        b = FPState((FTOP,) * 16, ())
        assert a.join(b).stack_get(key) is FTOP
        j = a.join(a)
        assert j.stack_get(key) == Rng(1.0, 1.0, 0.0)

    def test_storing_unknown_erases(self):
        key = ("s", 0x400000, -8)
        st = FPState((FTOP,) * 16, ((key, Rng(1.0, 1.0, 0.0)),))
        assert st.stack_set(key, FTOP).stack == ()


# --------------------------------------------------------------------------- #
# fixpoint behavior on compiled programs                                       #
# --------------------------------------------------------------------------- #

class TestFixpoint:
    def test_conversion_chain_is_proven(self):
        """cvtsi2sd of a loop index and scaling by a constant carry at
        most one rounding each: both proven, the conversion exact."""
        b = build("""
        double out;
        long main() {
            for (long i = 0; i < 100; i = i + 1) {
                out = 0.001 * i;
            }
            printf("%.17g\\n", out);
            return 0;
        }
        """)
        r = analyze_ranges(b)
        by_mn = {r.mnemonics[a]: a for a in r.checkable}
        assert by_mn["cvtsi2sd"] in r.proven
        assert by_mn["mulsd"] in r.proven
        # the conversion is bit-exact; the scaling rounds (0.001 is
        # not a binary fraction) so it is proven but not exact
        assert by_mn["cvtsi2sd"] in r.exact
        assert by_mn["mulsd"] not in r.exact

    def test_loop_carried_accumulator_widens_to_unproven(self):
        b = build("""
        double acc;
        long main() {
            acc = 0.0;
            for (long i = 0; i < 100; i = i + 1) {
                acc = acc + 0.1;
            }
            printf("%.17g\\n", acc);
            return 0;
        }
        """)
        r = analyze_ranges(b)
        addsd = [a for a in r.checkable if r.mnemonics[a] == "addsd"]
        assert addsd and all(a not in r.proven for a in addsd)
        assert r.iterations > 0

    def test_cancellation_is_never_proven(self):
        """A subtraction whose result interval crosses zero cannot
        bound relative divergence: the (big+1)-big site stays checked."""
        b = build("""
        double big;
        double diff;
        long main() {
            big = 1e16;
            diff = (big + 1.0) - big;
            printf("%.17g\\n", diff);
            return 0;
        }
        """)
        r = analyze_ranges(b)
        subsd = [a for a in r.checkable if r.mnemonics[a] == "subsd"]
        assert subsd and all(a not in r.proven for a in subsd)

    def test_integer_arithmetic_is_exact(self):
        """Small-integer add stays bit-exact (closed in binary64)."""
        b = build("""
        double x;
        long main() {
            for (long i = 0; i < 50; i = i + 1) {
                x = 100000000.0 + (i % 2);
            }
            printf("%.17g\\n", x);
            return 0;
        }
        """)
        r = analyze_ranges(b)
        addsd = [a for a in r.checkable if r.mnemonics[a] == "addsd"]
        assert any(a in r.exact for a in addsd)

    def test_huge_integer_products_are_not_exact(self):
        """(1e8+1)^2 exceeds 2^53: the product rounds, so the site is
        proven (err ~ u) but must not be claimed bit-exact."""
        b = build("""
        double x;
        double y;
        long main() {
            for (long i = 0; i < 50; i = i + 1) {
                x = 100000000.0 + (i % 2);
                y = x * x;
            }
            printf("%.17g\\n", y);
            return 0;
        }
        """)
        r = analyze_ranges(b)
        mulsd = [a for a in r.checkable if r.mnemonics[a] == "mulsd"]
        assert mulsd
        assert all(a not in r.exact for a in mulsd)
        assert all(a in r.proven for a in mulsd)

    def test_division_near_zero_unproven(self):
        b = build("""
        double q;
        double d;
        long main() {
            d = 0.0;
            for (long i = 0; i < 10; i = i + 1) {
                d = d + 0.1;
                q = 1.0 / (d - 0.5);
            }
            printf("%.17g\\n", q);
            return 0;
        }
        """)
        r = analyze_ranges(b)
        divsd = [a for a in r.checkable if r.mnemonics[a] == "divsd"]
        assert divsd and all(a not in r.proven for a in divsd)

    def test_bounds_are_sound_on_straightline_code(self):
        b = build("""
        double r;
        long main() {
            r = (2.0 * 3.0 + 1.0) / 2.0;
            printf("%.17g\\n", r);
            return 0;
        }
        """)
        rep = analyze_ranges(b)
        for addr in rep.checkable:
            bd = rep.bounds.get(addr)
            if bd is None:
                continue
            lo, hi, _ = bd
            assert lo <= hi

    def test_exact_subset_of_proven(self):
        b = build("""
        double out;
        long main() {
            for (long i = 0; i < 20; i = i + 1) { out = 0.5 * i; }
            printf("%.17g\\n", out);
            return 0;
        }
        """)
        r = analyze_ranges(b)
        assert r.exact <= r.proven
        assert r.proven <= set(r.checkable)


# --------------------------------------------------------------------------- #
# report plumbing                                                              #
# --------------------------------------------------------------------------- #

class TestReport:
    SRC = """
    double out;
    long main() {
        for (long i = 0; i < 10; i = i + 1) { out = 0.001 * i; }
        printf("%.17g\\n", out);
        return 0;
    }
    """

    def test_cache_roundtrip(self):
        b = build(self.SRC)
        first = analyze_ranges(b)
        assert not first.cache_hit
        again = analyze_ranges(b)
        assert again.cache_hit
        assert again.proven == first.proven
        # a different threshold is a different cache key
        other = analyze_ranges(b, threshold=1e-3)
        assert not other.cache_hit

    def test_to_dict_and_summary(self):
        b = build(self.SRC)
        r = analyze_ranges(b)
        d = r.to_dict()
        assert d["checkable"] == len(r.checkable)
        assert sorted(r.proven) == d["proven"]
        assert 0.0 <= d["prove_rate"] <= 1.0
        text = r.summary(top=5)
        assert "proven divergence-free" in text
        assert "bit-exact" in text
