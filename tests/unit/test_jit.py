"""Unit tests for the trap-site JIT: compile/fuse/invalidate lifecycle,
unbox-memo staleness across GC sweeps, and config plumbing."""

import pytest

from repro.arith import VanillaArithmetic
from repro.compiler import compile_source
from repro.fpvm.runtime import FPVM, FPVMConfig
from repro.machine.loader import load_binary
from repro.session import Session

#: one hot mulsd site, no fusible neighbour, few enough cycles that the
#: default GC epoch never fires mid-run (memos survive to inspection)
_SINGLE_SRC = """
long main() {
    double s = 0.1;
    for (long i = 0; i < 60; i = i + 1) { s = s * 1.0000001; }
    printf("%.17g\\n", s);
    return 0;
}
"""

#: adjacent divsd+addsd on the same destination: fuses into one kernel
_PAIR_SRC = """
long main() {
    double s = 0.1;
    for (long i = 0; i < 60; i = i + 1) { s = s / 1.0000001 + 0.0000001; }
    printf("%.17g\\n", s);
    return 0;
}
"""


def _run(src, **cfg):
    r = Session(lambda: compile_source(src), VanillaArithmetic(),
                config=FPVMConfig(**cfg)).run()
    return r


def _run_raw(src, **cfg):
    """Install + run without the Session layer's final GC pass, so the
    post-run JIT memo/bind-cache state is still inspectable."""
    m = load_binary(compile_source(src))
    fpvm = FPVM(VanillaArithmetic(), FPVMConfig(**cfg))
    fpvm.install(m)
    m.run()
    return m, fpvm


class TestCompile:
    def test_site_compiles_after_threshold(self):
        r = _run(_SINGLE_SRC, jit_threshold=4)
        jit = r.fpvm.jit
        assert len(jit.sites) == 1
        site = next(iter(jit.sites.values()))
        assert site.ins.mnemonic == "mulsd"
        assert site.hits > 0
        # the dispatch table now holds the compiled closure
        assert r.machine._code[site.addr] is site.step
        assert r.fpvm.stats.jit_sites_compiled == 1
        # compiled hits do not deliver faults
        assert r.fpvm.stats.jit_hits > 0
        assert r.fp_traps < 60

    def test_threshold_zero_disables_jit(self):
        r = _run(_SINGLE_SRC)
        assert r.fpvm.jit is None
        assert r.fpvm.stats.jit_sites_compiled == 0

    def test_jit_requires_trap_and_emulate(self):
        r = _run(_SINGLE_SRC, jit_threshold=2, mode="trap-and-patch")
        assert r.fpvm.jit is None

    def test_gc_mode_validated(self):
        with pytest.raises(ValueError):
            FPVM(VanillaArithmetic(), FPVMConfig(gc_mode="generational"))

    def test_hit_rate_reported(self):
        r = _run(_SINGLE_SRC, jit_threshold=2)
        stats = r.fpvm.stats
        assert 0.5 < stats.patched_site_hit_rate < 1.0
        summary = r.fpvm.jit.summary()
        assert summary["sites"] == 1
        assert summary["hits"] == stats.jit_hits


class TestFuse:
    def test_adjacent_sites_fuse(self):
        r = _run(_PAIR_SRC, jit_threshold=4)
        jit = r.fpvm.jit
        assert len(jit.sites) == 2
        assert len(jit.fused) == 1
        head_addr, chain = next(iter(jit.fused.items()))
        assert [s.ins.mnemonic for s in chain] == ["divsd", "addsd"]
        assert all(s.fused_head == head_addr for s in chain)
        # the kernel sits at the head; the tail step is never dispatched
        assert r.machine._code[head_addr] is not chain[0].step
        assert r.fpvm.stats.jit_fused_kernels >= 1
        assert r.fpvm.stats.boxes_elided > 0

    def test_fusion_disabled_under_demotion_policy(self):
        """box_exact_results=False demotes per instruction; eliding the
        intermediate would change results, so chains must not fuse."""
        r = _run(_PAIR_SRC, jit_threshold=4, box_exact_results=False)
        jit = r.fpvm.jit
        assert len(jit.sites) == 2
        assert jit.fused == {}
        assert r.fpvm.stats.boxes_elided == 0

    def test_invalidate_member_unfuses(self):
        r = _run(_PAIR_SRC, jit_threshold=4)
        jit, m = r.fpvm.jit, r.machine
        head_addr, chain = next(iter(jit.fused.items()))
        tail = chain[1]
        jit.invalidate_site(m, tail.addr, "test")
        assert tail.addr not in jit.sites
        assert jit.fused == {}  # a 1-site chain cannot re-fuse
        # the surviving head falls back to its individual step
        head = jit.sites[head_addr]
        assert m._code[head_addr] is head.step
        assert r.fpvm.stats.jit_invalidations == 1

    def test_invalidate_all_restores_interpreter(self):
        r = _run(_PAIR_SRC, jit_threshold=4)
        jit, m = r.fpvm.jit, r.machine
        originals = dict(jit._original)
        jit.invalidate_all(m, "test")
        assert jit.sites == {}
        assert jit.fused == {}
        for addr, step in originals.items():
            assert m._code[addr] is step


class TestMemoStaleness:
    """Satellite regression: shadow handles are free-listed and the
    NaN-box encoding is deterministic, so a swept handle can be
    re-issued later with identical bits for a different value.  Any
    cache keyed on box bits (bind-cache entries, JIT unbox memos) must
    be flushed when its handle is reclaimed."""

    def test_memo_registers_shadow_keys(self):
        _, fpvm = _run_raw(_SINGLE_SRC, jit_threshold=4)
        site = next(iter(fpvm.jit.sites.values()))
        assert site.memo[0] is not None  # the dst box was memoized
        keys = fpvm.bind_cache.shadow_keys.get(site.addr)
        assert keys  # and its handle registered for sweep tracking

    def test_sweep_flushes_memo_and_bind_entry(self):
        _, fpvm = _run_raw(_SINGLE_SRC, jit_threshold=4)
        site = next(iter(fpvm.jit.sites.values()))
        keys = set(fpvm.bind_cache.shadow_keys[site.addr])
        assert site.memo[0] is not None
        # what ConservativeGC does after a sweep reclaims those handles
        fpvm._on_gc_sweep(tuple(keys))
        assert site.memo == [None, None, None, None]
        assert site.addr not in fpvm.bind_cache.shadow_keys

    def test_sweep_of_unrelated_handles_keeps_memo(self):
        _, fpvm = _run_raw(_SINGLE_SRC, jit_threshold=4)
        site = next(iter(fpvm.jit.sites.values()))
        memo_before = list(site.memo)
        live = set().union(*fpvm.bind_cache.shadow_keys.values())
        bogus = max(live) + 10_000
        fpvm._on_gc_sweep((bogus,))
        assert site.memo == memo_before

    def test_handle_reuse_end_to_end(self):
        """Aggressive GC epochs force handle reuse mid-run; with the
        sweep hook wired through, JIT output stays bit-identical."""
        base = _run(_PAIR_SRC, gc_epoch_cycles=20_000)
        jit = _run(_PAIR_SRC, gc_epoch_cycles=20_000, jit_threshold=2)
        assert jit.stdout == base.stdout
        assert jit.instr_count == base.instr_count
        assert jit.fpvm.stats.jit_hits > 0
        # sweeps actually happened (the regression needs real reuse)
        assert len(jit.fpvm.gc.passes) > 1


class TestDegradation:
    def test_degrade_invalidates_site(self):
        """A site demoted by the degradation ladder is torn down and
        never recompiled (demoted sites are excluded in note_trap)."""
        r = _run(_SINGLE_SRC, jit_threshold=4)
        jit, m, fpvm = r.fpvm.jit, r.machine, r.fpvm
        site = next(iter(jit.sites.values()))
        fpvm._degrade(m, site.ins, "emulate", RuntimeError("test"))
        assert site.addr not in jit.sites
        assert m._code[site.addr] is not site.step
