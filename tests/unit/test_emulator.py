"""Unit tests for the emulator: boxing policy, promotion/demotion,
universal NaNs, and per-op behaviour over Vanilla arithmetic."""

import math

import pytest

from repro.ieee.bits import (
    F64_DEFAULT_QNAN,
    F64_EXP_MASK,
    bits_to_f64,
    f32_to_bits,
    f64_to_bits,
    is_qnan64,
)
from repro.isa.instructions import Instruction
from repro.isa.operands import Imm, Mem, Reg, Xmm
from repro.arith import VanillaArithmetic
from repro.fpvm.decoder import decode_instruction
from repro.fpvm.binding import bind
from repro.fpvm.emulator import Emulator
from repro.fpvm.nanbox import NaNBoxCodec
from repro.fpvm.shadow import ShadowStore
from conftest import asm_program
from repro.machine.loader import load_binary


@pytest.fixture
def setup():
    store = ShadowStore()
    codec = NaNBoxCodec()
    emu = Emulator(VanillaArithmetic(), store, codec)

    def body(a):
        a.emit("nop")

    def data(a):
        a.double("scratch", 0.0)

    m = load_binary(asm_program(body, data=data))
    return emu, store, codec, m


def emulate(emu, m, mnemonic, *ops):
    ins = Instruction(mnemonic, tuple(ops), addr=0x400000)
    bound = bind(m, decode_instruction(ins))
    return emu.emulate(m, bound)


class TestUnboxBox:
    def test_promote_plain_double(self, setup):
        emu, _, _, _ = setup
        v = emu.unbox(f64_to_bits(2.5))
        assert v == 2.5
        assert emu.promotions == 1

    def test_unbox_live_box(self, setup):
        emu, store, codec, _ = setup
        h = store.alloc(9.75)
        assert emu.unbox(codec.encode(h)) == 9.75
        assert emu.unbox_hits == 1

    def test_dangling_box_is_universal_nan(self, setup):
        emu, _, codec, _ = setup
        v = emu.unbox(codec.encode(12345))  # no shadow behind it
        assert math.isnan(v)
        assert emu.universal_nans == 1

    def test_program_snan_is_universal_nan(self, setup):
        emu, _, _, _ = setup
        assert math.isnan(emu.unbox(F64_EXP_MASK | 0x7))

    def test_box_allocates_shadow(self, setup):
        emu, store, codec, m = setup
        from repro.fpvm.binding import XmmLoc

        emu.box(XmmLoc(m, 0, 0), 3.0)
        bits = m.regs.xmm_lo(0)
        assert codec.is_box(bits)
        assert store.get(codec.decode(bits)) == 3.0
        assert emu.boxes_created == 1

    def test_nan_results_stay_visible(self, setup):
        emu, _, _, m = setup
        from repro.fpvm.binding import XmmLoc

        emu.box(XmmLoc(m, 0, 0), math.nan)
        assert m.regs.xmm_lo(0) == F64_DEFAULT_QNAN

    def test_demote_bits(self, setup):
        emu, store, codec, _ = setup
        h = store.alloc(6.5)
        assert emu.demote_bits(codec.encode(h)) == f64_to_bits(6.5)
        assert emu.demote_bits(f64_to_bits(1.0)) == f64_to_bits(1.0)
        assert emu.demote_bits(codec.encode(4040)) == F64_DEFAULT_QNAN

    def test_box_exact_results_off(self, setup):
        _, store, codec, m = setup
        emu = Emulator(VanillaArithmetic(), store, codec,
                       box_exact_results=False)
        from repro.fpvm.binding import XmmLoc

        emu.box(XmmLoc(m, 0, 0), 3.0)  # exactly representable
        assert m.regs.xmm_lo(0) == f64_to_bits(3.0)  # stored unboxed
        assert emu.boxes_created == 0


class TestOps:
    def test_add_boxes_result(self, setup):
        emu, store, codec, m = setup
        m.regs.set_xmm_lo(0, f64_to_bits(0.1))
        m.regs.set_xmm_lo(1, f64_to_bits(0.2))
        emulate(emu, m, "addsd", Xmm(0), Xmm(1))
        bits = m.regs.xmm_lo(0)
        assert codec.is_box(bits)
        assert store.get(codec.decode(bits)) == 0.1 + 0.2

    def test_chained_boxed_operands(self, setup):
        emu, store, codec, m = setup
        h = store.alloc(10.0)
        m.regs.set_xmm_lo(0, codec.encode(h))
        m.regs.set_xmm_lo(1, f64_to_bits(2.5))
        emulate(emu, m, "mulsd", Xmm(0), Xmm(1))
        assert store.get(codec.decode(m.regs.xmm_lo(0))) == 25.0

    def test_packed_lanes_emulated_separately(self, setup):
        emu, store, codec, m = setup
        m.regs.set_xmm(0, f64_to_bits(1.0), f64_to_bits(2.0))
        m.regs.set_xmm(1, f64_to_bits(10.0), f64_to_bits(20.0))
        emulate(emu, m, "addpd", Xmm(0), Xmm(1))
        lo = store.get(codec.decode(m.regs.xmm_lo(0)))
        hi = store.get(codec.decode(m.regs.xmm_hi(0)))
        assert (lo, hi) == (11.0, 22.0)

    def test_compare_sets_rflags(self, setup):
        emu, store, codec, m = setup
        h = store.alloc(5.0)
        m.regs.set_xmm_lo(0, codec.encode(h))
        m.regs.set_xmm_lo(1, f64_to_bits(7.0))
        emulate(emu, m, "ucomisd", Xmm(0), Xmm(1))
        assert (m.regs.zf, m.regs.pf, m.regs.cf) == (0, 0, 1)  # 5 < 7

    def test_compare_unordered(self, setup):
        emu, _, _, m = setup
        m.regs.set_xmm_lo(0, F64_DEFAULT_QNAN)
        m.regs.set_xmm_lo(1, f64_to_bits(7.0))
        emulate(emu, m, "ucomisd", Xmm(0), Xmm(1))
        assert (m.regs.zf, m.regs.pf, m.regs.cf) == (1, 1, 1)

    @pytest.mark.parametrize("pred,expect", [
        (0, False), (1, True), (2, True), (4, True), (5, False),
    ])
    def test_cmp_pred(self, setup, pred, expect):
        emu, store, codec, m = setup
        m.regs.set_xmm_lo(0, f64_to_bits(1.0))
        m.regs.set_xmm_lo(1, f64_to_bits(2.0))
        emulate(emu, m, "cmpsd", Xmm(0), Xmm(1), Imm(pred))
        assert (m.regs.xmm_lo(0) == (1 << 64) - 1) == expect

    def test_cvt_to_int_never_boxes(self, setup):
        emu, store, codec, m = setup
        h = store.alloc(41.9)
        m.regs.set_xmm_lo(0, codec.encode(h))
        emulate(emu, m, "cvttsd2si", Reg("rax"), Xmm(0))
        assert m.regs.get_gpr("rax") == 41

    def test_cvt_from_int_boxes(self, setup):
        emu, store, codec, m = setup
        m.regs.set_gpr("rax", 42)
        emulate(emu, m, "cvtsi2sd", Xmm(0), Reg("rax"))
        assert store.get(codec.decode(m.regs.xmm_lo(0))) == 42.0

    def test_f32_never_boxed(self, setup):
        """The 'float problem' (§2): binary32 results are demoted."""
        emu, store, codec, m = setup
        m.regs.set_xmm_lo(0, f32_to_bits(0.1))
        m.regs.set_xmm_lo(1, f32_to_bits(0.2))
        emulate(emu, m, "addss", Xmm(0), Xmm(1))
        lo32 = m.regs.xmm_lo(0) & 0xFFFF_FFFF
        import numpy as np

        assert lo32 == f32_to_bits(float(np.float32(0.1) + np.float32(0.2)))
        assert store.live_count == 0

    def test_cvtsd2ss_demotes(self, setup):
        emu, store, codec, m = setup
        h = store.alloc(1.5)
        m.regs.set_xmm_lo(0, codec.encode(h))
        emulate(emu, m, "cvtsd2ss", Xmm(1), Xmm(0))
        assert m.regs.xmm_lo(1) & 0xFFFF_FFFF == f32_to_bits(1.5)

    def test_round(self, setup):
        emu, store, codec, m = setup
        m.regs.set_xmm_lo(0, f64_to_bits(2.7))
        emulate(emu, m, "roundsd", Xmm(1), Xmm(0), Imm(3))
        assert store.get(codec.decode(m.regs.xmm_lo(1))) == 2.0

    def test_sqrt_negative_universal_nan(self, setup):
        emu, _, _, m = setup
        m.regs.set_xmm_lo(0, f64_to_bits(-4.0))
        emulate(emu, m, "sqrtsd", Xmm(1), Xmm(0))
        assert is_qnan64(m.regs.xmm_lo(1))

    def test_emulate_returns_model_cycles(self, setup):
        emu, _, _, m = setup
        m.regs.set_xmm_lo(0, f64_to_bits(1.0))
        m.regs.set_xmm_lo(1, f64_to_bits(3.0))
        cycles = emulate(emu, m, "divsd", Xmm(0), Xmm(1))
        assert cycles == VanillaArithmetic().op_cycles("div")

    def test_ops_emulated_stats(self, setup):
        emu, _, _, m = setup
        m.regs.set_xmm_lo(0, f64_to_bits(1.0))
        m.regs.set_xmm_lo(1, f64_to_bits(3.0))
        emulate(emu, m, "addsd", Xmm(0), Xmm(1))
        emulate(emu, m, "addsd", Xmm(0), Xmm(1))
        assert emu.ops_emulated["add"] == 2
