"""Unit tests for the ISA model and the assembler."""

import pytest

from repro.errors import AssemblyError
from repro.isa.instructions import Instruction
from repro.isa.opcodes import (
    OPCODES,
    OpClass,
    is_fp_bitwise,
    is_fp_mov,
    is_fp_trapping,
    opcode_info,
)
from repro.isa.operands import Imm, Label, Mem, Reg, Xmm
from repro.asm import Assembler
from repro.asm.program import IMPORT_BASE, TEXT_BASE


class TestOperands:
    def test_reg_validation(self):
        assert Reg("rax").size == 8
        assert Reg("eax").size == 4 and Reg("eax").canonical == "rax"
        assert Reg("al").size == 1
        with pytest.raises(ValueError):
            Reg("xyz")

    def test_xmm_validation(self):
        assert Xmm(15).index == 15
        with pytest.raises(ValueError):
            Xmm(16)

    def test_mem_validation(self):
        m = Mem(base="rbp", disp=-8)
        assert m.size == 8
        with pytest.raises(ValueError):
            Mem(base="nope")
        with pytest.raises(ValueError):
            Mem(scale=3)
        with pytest.raises(ValueError):
            Mem(size=7)


class TestOpcodeTable:
    def test_classification(self):
        assert opcode_info("addsd").opclass is OpClass.FP_ARITH
        assert opcode_info("xorpd").opclass is OpClass.FP_BITWISE
        assert opcode_info("movq").opclass is OpClass.FP_MOV
        assert opcode_info("mov").opclass is OpClass.INT_MOV

    def test_trap_capability_predicates(self):
        # the virtualization-hole structure: arithmetic traps, moves
        # and bitwise ops never do
        for mn in ("addsd", "divpd", "ucomisd", "cvtsi2sd", "roundsd"):
            assert is_fp_trapping(mn)
        for mn in ("xorpd", "andpd", "orpd", "andnpd"):
            assert is_fp_bitwise(mn) and not is_fp_trapping(mn)
        for mn in ("movsd", "movq", "movapd", "movhpd"):
            assert is_fp_mov(mn) and not is_fp_trapping(mn)

    def test_packed_lanes(self):
        assert opcode_info("addpd").lanes == 2
        assert opcode_info("addsd").lanes == 1

    def test_lengths_plausible(self):
        assert opcode_info("ret").length == 1
        assert opcode_info("call").length == 5
        assert opcode_info("movabs").length == 10
        assert all(1 <= i.length <= 10 for i in OPCODES.values())


class TestInstruction:
    def test_unknown_mnemonic(self):
        with pytest.raises(ValueError):
            Instruction("frobnicate")

    def test_length_defaults_from_table(self):
        i = Instruction("addsd", (Xmm(0), Xmm(1)))
        assert i.length == opcode_info("addsd").length
        assert i.next_addr == i.addr + i.length

    def test_with_addr(self):
        i = Instruction("nop")
        j = i.with_addr(0x1234)
        assert j.addr == 0x1234 and i.addr == 0


class TestAssembler:
    def test_label_resolution(self):
        a = Assembler()
        a.label("main")
        a.emit("jmp", Label("end"))
        a.emit("nop")
        a.label("end")
        a.emit("ret")
        b = a.assemble()
        jmp = b.text[0]
        assert isinstance(jmp.operands[0], Imm)
        assert jmp.operands[0].value == b.symbols["end"]

    def test_addresses_sequential(self):
        a = Assembler()
        a.label("main")
        a.emit("nop")
        a.emit("mov", Reg("rax"), Imm(1))
        a.emit("ret")
        b = a.assemble()
        assert b.text[0].addr == TEXT_BASE
        assert b.text[1].addr == b.text[0].next_addr
        assert b.text[2].addr == b.text[1].next_addr

    def test_duplicate_label_rejected(self):
        a = Assembler()
        a.label("main")
        a.label("x")
        a.emit("ret")
        a.label("x")
        with pytest.raises(AssemblyError):
            a.assemble()

    def test_undefined_symbol_rejected(self):
        a = Assembler()
        a.label("main")
        a.emit("jmp", Label("nowhere"))
        with pytest.raises(AssemblyError):
            a.assemble()

    def test_missing_entry_rejected(self):
        a = Assembler()
        a.label("start")
        a.emit("ret")
        with pytest.raises(AssemblyError):
            a.assemble(entry="main")

    def test_data_directives(self):
        a = Assembler()
        a.double("pi", 3.25)
        a.quad("answer", 42)
        a.quad("table", [1, 2, 3])
        a.asciiz("s", "hi")
        a.space("buf", 64)
        a.label("main")
        a.emit("ret")
        b = a.assemble()
        import struct

        off = b.symbols["pi"] - b.data_base
        assert struct.unpack_from("<d", b.data, off)[0] == 3.25
        off = b.symbols["answer"] - b.data_base
        assert struct.unpack_from("<Q", b.data, off)[0] == 42
        off = b.symbols["s"] - b.data_base
        assert bytes(b.data[off:off + 3]) == b"hi\x00"
        assert "s" in b.rodata_symbols

    def test_duplicate_data_symbol(self):
        a = Assembler()
        a.quad("x", 1)
        with pytest.raises(AssemblyError):
            a.quad("x", 2)

    def test_externs_get_plt_addresses(self):
        a = Assembler()
        a.extern("printf", "sin")
        a.label("main")
        a.emit("call", Label("sin"))
        a.emit("ret")
        b = a.assemble()
        assert b.imports["printf"] == IMPORT_BASE
        assert b.imports["sin"] == IMPORT_BASE + 16
        assert b.text[0].operands[0].value == b.imports["sin"]
        assert b.import_name_at(IMPORT_BASE) == "printf"

    def test_mem_disp_label_resolved(self):
        a = Assembler()
        a.double("c", 1.5)
        a.label("main")
        a.emit("movsd", Xmm(0), Mem(disp=Label("c")))
        a.emit("ret")
        b = a.assemble()
        assert b.text[0].operands[1].disp == b.symbols["c"]

    def test_replace_instruction_same_length(self):
        a = Assembler()
        a.label("main")
        a.emit("addsd", Xmm(0), Xmm(1))
        a.emit("ret")
        b = a.assemble()
        site = b.text[0].addr
        patch = Instruction("fpvm_trap", (), site, b.text[0].length,
                            payload={"original": b.text[0]})
        old = b.replace_instruction(site, patch)
        assert old.mnemonic == "addsd"
        assert b.instruction_at(site).mnemonic == "fpvm_trap"

    def test_replace_instruction_length_mismatch(self):
        a = Assembler()
        a.label("main")
        a.emit("ret")
        b = a.assemble()
        with pytest.raises(AssemblyError):
            b.replace_instruction(b.entry, Instruction("nop", (), 0, 9))

    def test_disassemble_mentions_symbols(self):
        a = Assembler()
        a.label("main")
        a.emit("nop")
        a.emit("ret")
        listing = a.assemble().disassemble()
        assert "main:" in listing and "nop" in listing

    def test_function_symbols(self):
        a = Assembler()
        a.quad("g", 0)
        a.label("main")
        a.emit("ret")
        b = a.assemble()
        fs = b.function_symbols()
        assert "main" in fs and "g" not in fs
