"""Unit tests for the posit codec and arithmetic."""

import math

import pytest

from repro.ieee.bits import bits_to_f64, f64_to_bits
from repro.arith.interface import Ordering
from repro.arith.posit import PositArithmetic, PositEnv
from repro.arith.posit.encoding import decode, encode


def pval(p: PositArithmetic, w: int) -> float:
    return bits_to_f64(p.to_f64_bits(w))


def pof(p: PositArithmetic, x: float) -> int:
    return p.from_f64_bits(f64_to_bits(x))


class TestEnv:
    def test_validation(self):
        with pytest.raises(ValueError):
            PositEnv(2)
        with pytest.raises(ValueError):
            PositEnv(128)
        with pytest.raises(ValueError):
            PositEnv(32, es=9)

    def test_special_words(self):
        env = PositEnv(8, 2)
        assert env.nar == 0x80
        assert env.maxpos == 0x7F
        assert env.minpos == 1


class TestCodec:
    def test_zero_and_nar(self):
        env = PositEnv(16, 2)
        assert decode(env, 0) == (0, 0, 0)
        assert decode(env, env.nar) is None

    def test_one(self):
        env = PositEnv(16, 2)
        # +1.0 is 0b0100...0 in any posit config
        s, m, e = decode(env, 0x4000)
        assert (-1 if s else 1) * m * 2.0**e == 1.0
        assert encode(env, 0, 1, 0) == 0x4000

    def test_exhaustive_roundtrip_posit8(self):
        for es in (0, 1, 2, 3):
            env = PositEnv(8, es)
            for w in range(256):
                d = decode(env, w)
                if d is None or d[1] == 0:
                    continue
                s, m, e = d
                assert encode(env, s, m, e) == w, (es, w)

    def test_negation_symmetry(self):
        env = PositEnv(12, 1)
        for w in range(1, 1 << 12):
            if w == env.nar:
                continue
            d = decode(env, w)
            dn = decode(env, (-w) & env.mask)
            assert d[1] == dn[1] and d[2] == dn[2] and d[0] != dn[0]

    def test_saturation_not_nar(self):
        env = PositEnv(8, 2)
        # a huge value rounds to maxpos, never to NaR
        assert encode(env, 0, 1, 1000) == env.maxpos
        assert encode(env, 1, 1, 1000) == (-env.maxpos) & env.mask
        # a tiny value rounds to minpos, never to zero
        assert encode(env, 0, 1, -1000) == env.minpos

    def test_rounding_to_nearest_word(self):
        env = PositEnv(8, 0)
        # between two adjacent posits: rounds to nearest encoding
        lo = decode(env, 0x40)  # 1.0
        hi = decode(env, 0x41)
        v_lo = lo[1] * 2.0 ** lo[2]
        v_hi = hi[1] * 2.0 ** hi[2]
        mid_low = (3 * v_lo + v_hi) / 4  # closer to lo
        s, m, e = 0, int(mid_low * 2**40), -40
        assert encode(env, s, m, e) == 0x40


class TestArithmetic:
    p = PositArithmetic(32, 2)

    def test_exact_small_arith(self):
        a, b = pof(self.p, 2.0), pof(self.p, 3.0)
        assert pval(self.p, self.p.add(a, b)) == 5.0
        assert pval(self.p, self.p.sub(a, b)) == -1.0
        assert pval(self.p, self.p.mul(a, b)) == 6.0
        assert pval(self.p, self.p.div(pof(self.p, 6.0), b)) == 2.0

    def test_zero_identities(self):
        z = pof(self.p, 0.0)
        x = pof(self.p, 7.5)
        assert self.p.add(z, x) == x
        assert self.p.mul(z, x) == 0
        assert self.p.div(z, x) == 0

    def test_nar_propagation(self):
        x = pof(self.p, 2.0)
        nar = self.p.nar
        assert self.p.add(nar, x) == nar
        assert self.p.mul(x, nar) == nar
        assert self.p.div(x, pof(self.p, 0.0)) == nar  # x/0 = NaR
        assert self.p.sqrt(self.p.neg(x)) == nar

    def test_no_overflow_saturates(self):
        big = pof(self.p, 1e30)
        r = self.p.mul(big, big)
        assert not self.p.is_nan(r)
        assert r == self.p.env.maxpos

    def test_sqrt(self):
        assert pval(self.p, self.p.sqrt(pof(self.p, 4.0))) == 2.0
        r = pval(self.p, self.p.sqrt(pof(self.p, 2.0)))
        assert r == pytest.approx(math.sqrt(2.0), rel=1e-7)

    def test_fma(self):
        a, b, c = pof(self.p, 2.0), pof(self.p, 3.0), pof(self.p, 1.0)
        assert pval(self.p, self.p.fma(a, b, c)) == 7.0

    def test_neg_abs_word_ops(self):
        x = pof(self.p, -3.0)
        assert pval(self.p, self.p.neg(x)) == 3.0
        assert pval(self.p, self.p.abs(x)) == 3.0
        assert self.p.neg(self.p.nar) == self.p.nar
        assert self.p.neg(0) == 0

    def test_min_max(self):
        a, b = pof(self.p, 1.0), pof(self.p, -2.0)
        assert self.p.min(a, b) == b
        assert self.p.max(a, b) == a
        assert self.p.min(self.p.nar, a) == a  # x64 MINSD-like

    def test_tapered_precision(self):
        """Posits near 1 have more fraction bits than far from 1."""
        near = self.p.div(pof(self.p, 1.0), pof(self.p, 3.0))
        far = self.p.mul(pof(self.p, 1e12),
                         self.p.div(pof(self.p, 1.0), pof(self.p, 3.0)))
        rel_near = abs(pval(self.p, near) - 1 / 3) / (1 / 3)
        rel_far = abs(pval(self.p, far) - 1e12 / 3) / (1e12 / 3)
        assert rel_near < rel_far


class TestTranscendental:
    p = PositArithmetic(32, 2)

    @pytest.mark.parametrize("fn,ref,x", [
        ("sin", math.sin, 1.0), ("cos", math.cos, 0.5),
        ("exp", math.exp, 2.0), ("log", math.log, 10.0),
        ("atan", math.atan, 3.0), ("tan", math.tan, 0.3),
    ])
    def test_unary(self, fn, ref, x):
        got = pval(self.p, getattr(self.p, fn)(pof(self.p, x)))
        assert got == pytest.approx(ref(x), rel=1e-6)

    def test_pow_atan2_fmod(self):
        assert pval(self.p, self.p.pow(pof(self.p, 2.0),
                                       pof(self.p, 10.0))) == 1024.0
        assert pval(self.p, self.p.atan2(pof(self.p, 1.0),
                                         pof(self.p, 1.0))) == \
            pytest.approx(math.pi / 4, rel=1e-7)
        assert pval(self.p, self.p.fmod(pof(self.p, 7.5),
                                        pof(self.p, 2.0))) == 1.5

    def test_nar_through_transcendental(self):
        assert self.p.sin(self.p.nar) == self.p.nar
        assert self.p.log(pof(self.p, -1.0)) == self.p.nar


class TestConversions:
    p = PositArithmetic(32, 2)

    def test_f64_roundtrip_exact_values(self):
        for x in (1.0, -2.5, 0.125, 1024.0, 3.0):
            assert pval(self.p, pof(self.p, x)) == x

    def test_nan_inf_to_nar(self):
        assert pof(self.p, math.nan) == self.p.nar
        assert pof(self.p, math.inf) == self.p.nar
        assert bits_to_f64(self.p.to_f64_bits(self.p.nar)) != \
            bits_to_f64(self.p.to_f64_bits(self.p.nar))  # NaN

    def test_int_conversions(self):
        assert self.p.to_i64(self.p.from_i64(42), True) == 42
        assert self.p.to_i64(pof(self.p, -2.7), True) == \
            (-2) & ((1 << 64) - 1)
        assert self.p.to_i32(pof(self.p, 2.5), False) == 2  # nearest-even
        assert self.p.to_i64(self.p.nar, True) == 1 << 63

    def test_round_to_integral(self):
        f = lambda x: pof(self.p, x)
        assert pval(self.p, self.p.round_to_integral(f(2.7), 1)) == 2.0
        assert pval(self.p, self.p.round_to_integral(f(-2.7), 1)) == -3.0
        assert pval(self.p, self.p.round_to_integral(f(2.5), 0)) == 2.0
        assert pval(self.p, self.p.round_to_integral(f(2.2), 2)) == 3.0
        assert pval(self.p, self.p.round_to_integral(f(5.0), 3)) == 5.0

    def test_f32(self):
        from repro.ieee.bits import f32_to_bits

        w = self.p.from_f32_bits(f32_to_bits(1.5))
        assert self.p.to_f32_bits(w) == f32_to_bits(1.5)


class TestCompare:
    p = PositArithmetic(16, 1)

    def test_orderings(self):
        a, b = pof(self.p, 1.0), pof(self.p, 2.0)
        assert self.p.compare(a, b) is Ordering.LT
        assert self.p.compare(b, a) is Ordering.GT
        assert self.p.compare(a, a) is Ordering.EQ
        assert self.p.compare(self.p.nar, a) is Ordering.UNORDERED

    def test_negative_ordering(self):
        a, b = pof(self.p, -5.0), pof(self.p, -1.0)
        assert self.p.compare(a, b) is Ordering.LT

    def test_predicates(self):
        assert self.p.is_nan(self.p.nar)
        assert self.p.is_zero(pof(self.p, 0.0))
        assert self.p.is_negative(pof(self.p, -1.0))
        assert not self.p.is_negative(self.p.nar)

    def test_decimal_str(self):
        p = PositArithmetic(32)
        s = p.to_decimal_str(p.div(p.from_i64(1), p.from_i64(3)))
        assert s.startswith("3.333")
