"""Tests for the repro.trace subsystem: events, sinks, profiler."""

import json

import pytest

from repro.session import Session
from repro.trace import (
    CacheMissEvent,
    CorrectnessTrapEvent,
    DemotionEvent,
    ExternCallEvent,
    GCEpochEvent,
    NDJSONSink,
    PatchEvent,
    ProfilerSink,
    RingBufferSink,
    RunMetaEvent,
    TeeSink,
    TraceSink,
    TrapEvent,
    event_from_dict,
    read_ndjson,
    summarize_events,
    summarize_file,
)
from repro.trace.events import flag_names


def _one_of_each():
    return [
        RunMetaEvent(label="t", arith="mpfr200", mode="trap-and-emulate",
                     platform="R815", fp_sites=[[0x400000, "addsd"]]),
        TrapEvent(cycles=10.0, addr=0x400000, mnemonic="addsd", flags=0x20,
                  decode_cycles=1.0, bind_cycles=2.0, emulate_cycles=3.0,
                  decode_hit=True, bind_hit=False),
        GCEpochEvent(cycles=20.0, words_scanned=64, bytes_scanned=512,
                     boxes_marked=3, alive_before=5, freed=2, alive_after=3,
                     scan_cycles=40.0),
        CorrectnessTrapEvent(cycles=30.0, addr=0x400010, mnemonic="mov",
                             trap_kind="sink", demotions=1),
        DemotionEvent(cycles=40.0, location="xmm0[0]", reason="call",
                      handle=7, bits=0x3FF0000000000000),
        PatchEvent(cycles=50.0, addr=0x400020, mnemonic="mulsd",
                   patch_kind="trap-and-patch", source="runtime"),
        ExternCallEvent(cycles=60.0, addr=0x400030, name="printf",
                        cycles_spent=100.0),
        CacheMissEvent(cycles=70.0, stage="bind", addr=0x400000,
                       mnemonic="addsd"),
    ]


class TestEvents:
    def test_dict_round_trip_every_kind(self):
        for ev in _one_of_each():
            d = ev.to_dict()
            assert d["kind"] == type(ev).kind
            back = event_from_dict(json.loads(json.dumps(d)))
            assert back == ev
            assert type(back) is type(ev)

    def test_unknown_kind_rejected(self):
        with pytest.raises(ValueError):
            event_from_dict({"kind": "nope"})

    def test_flag_names(self):
        assert flag_names(0) == []
        names = flag_names(0x3F)
        assert names == ["IE", "DE", "ZE", "OE", "UE", "PE"]

    def test_trap_event_stage_cycles(self):
        ev = TrapEvent(decode_cycles=1.0, bind_cycles=2.0,
                       emulate_cycles=4.0)
        assert ev.stage_cycles == 7.0


class TestRingBufferSink:
    def test_truncation_keeps_most_recent(self):
        ring = RingBufferSink(capacity=4)
        for i in range(10):
            ring.emit(TrapEvent(cycles=float(i)))
        assert len(ring) == 4
        assert ring.emitted == 10
        assert ring.dropped == 6
        assert [e.cycles for e in ring.events] == [6.0, 7.0, 8.0, 9.0]

    def test_no_drop_below_capacity(self):
        ring = RingBufferSink(capacity=8)
        for i in range(5):
            ring.emit(TrapEvent(cycles=float(i)))
        assert ring.dropped == 0
        assert [e.cycles for e in ring] == [0.0, 1.0, 2.0, 3.0, 4.0]

    def test_clear(self):
        ring = RingBufferSink(capacity=2)
        ring.emit(TrapEvent())
        ring.clear()
        assert len(ring) == 0 and ring.emitted == 0

    def test_bad_capacity(self):
        with pytest.raises(ValueError):
            RingBufferSink(capacity=0)

    def test_satisfies_protocol(self):
        assert isinstance(RingBufferSink(), TraceSink)
        assert isinstance(ProfilerSink(), TraceSink)


class TestNDJSONSink:
    def test_file_round_trip(self, tmp_path):
        path = tmp_path / "t.ndjson"
        sink = NDJSONSink(path)
        events = _one_of_each()
        for ev in events:
            sink.emit(ev)
        sink.close()
        back = read_ndjson(path)
        assert back == events

    def test_every_line_is_json_object_with_kind(self, tmp_path):
        path = tmp_path / "t.ndjson"
        sink = NDJSONSink(path)
        for ev in _one_of_each():
            sink.emit(ev)
        sink.close()
        for line in path.read_text().splitlines():
            d = json.loads(line)
            assert isinstance(d, dict) and "kind" in d

    def test_wraps_open_file_without_closing(self, tmp_path):
        path = tmp_path / "t.ndjson"
        with path.open("w") as fh:
            sink = NDJSONSink(fh)
            sink.emit(TrapEvent(cycles=1.0))
            sink.close()
            assert not fh.closed
        assert len(read_ndjson(path)) == 1


class TestTeeSink:
    def test_fans_out(self):
        a, b = RingBufferSink(), RingBufferSink()
        tee = TeeSink(a, b, None)
        tee.emit(TrapEvent(cycles=1.0))
        tee.close()
        assert len(a) == len(b) == 1


class TestProfiler:
    def test_aggregation_and_views(self):
        prof = ProfilerSink()
        for ev in _one_of_each():
            prof.emit(ev)
        prof.emit(TrapEvent(cycles=11.0, addr=0x400000, mnemonic="addsd",
                            flags=0x01, decode_cycles=1.0, bind_cycles=1.0,
                            emulate_cycles=1.0, decode_hit=True,
                            bind_hit=True))
        assert prof.total_traps == 2
        hot = prof.hot_sites(1)
        assert hot[0].addr == 0x400000 and hot[0].traps == 2
        assert prof.flag_histogram["IE"] == 1
        assert prof.flag_histogram["PE"] == 1
        cov = prof.coverage()
        assert cov["static_sites"] == 1 and cov["trapped"] == 1
        assert prof.gc_summary()["epochs"] == 1
        assert prof.extern_calls["printf"] == 1

    def test_coverage_reports_never_trapped(self):
        prof = ProfilerSink()
        prof.emit(RunMetaEvent(fp_sites=[[0x10, "addsd"], [0x20, "mulsd"]]))
        prof.emit(TrapEvent(addr=0x10, mnemonic="addsd", flags=0x20))
        cov = prof.coverage()
        assert cov["static_sites"] == 2
        assert cov["trapped"] == 1
        assert cov["never_trapped"] == [(0x20, "mulsd")]
        assert cov["fraction"] == 0.5

    def test_render_contains_tables(self):
        text = summarize_events(_one_of_each())
        assert "per-site hot spots" in text
        assert "per-flag trap histogram" in text
        assert "exception-flow coverage" in text
        assert "addsd" in text

    def test_summarize_file(self, tmp_path):
        path = tmp_path / "t.ndjson"
        sink = NDJSONSink(path)
        for ev in _one_of_each():
            sink.emit(ev)
        sink.close()
        assert "exception-flow coverage: 1/1" in summarize_file(path)


class TestEndToEndTracing:
    def test_lorenz_emits_all_five_event_families(self, tmp_path):
        path = tmp_path / "t.ndjson"
        sink = NDJSONSink(path)
        with Session("lorenz", "mpfr:80", size="test", trace=sink) as s:
            s.run()
        kinds = {type(e) for e in read_ndjson(path)}
        assert TrapEvent in kinds
        assert GCEpochEvent in kinds
        assert DemotionEvent in kinds
        assert PatchEvent in kinds
        assert ExternCallEvent in kinds
        assert RunMetaEvent in kinds

    def test_trace_summarize_cli(self, tmp_path):
        from repro.__main__ import main

        path = tmp_path / "t.ndjson"
        sink = NDJSONSink(path)
        with Session("lorenz", "mpfr:80", size="test", trace=sink) as s:
            s.run()
        assert main(["trace", "summarize", str(path)]) == 0

    def test_tracing_does_not_change_execution(self):
        """Differential: instruction counts and modeled cycles must be
        bit-identical with tracing off vs on (zero-cost guarantee)."""
        base = Session("lorenz", "mpfr:80", size="test").run()
        ring = RingBufferSink(capacity=1 << 20)
        traced = Session("lorenz", "mpfr:80", size="test",
                         trace=ring).run()
        assert ring.emitted > 0
        assert traced.instr_count == base.instr_count
        assert traced.fp_instr_count == base.fp_instr_count
        assert traced.fp_traps == base.fp_traps
        assert traced.cycles == base.cycles  # bit-identical floats
        assert traced.buckets == base.buckets
        assert traced.stdout == base.stdout

    def test_native_tracing_differential(self):
        base = Session("lorenz", None, size="test").run()
        ring = RingBufferSink()
        traced = Session("lorenz", None, size="test", trace=ring).run()
        assert traced.instr_count == base.instr_count
        assert traced.cycles == base.cycles
        assert any(isinstance(e, ExternCallEvent) for e in ring)
