"""Unit tests for the integer exactness predicates."""

from fractions import Fraction

from repro.ieee import exactness as X
from repro.ieee.bits import f64_to_bits as f


class TestSum:
    def test_exact(self):
        assert X.sum_is_exact(f(2.0), f(3.0), f(5.0))
        assert X.sum_is_exact(f(0.5), f(0.25), f(0.75))
        assert X.sum_is_exact(f(-1.5), f(1.5), f(0.0))

    def test_inexact(self):
        assert not X.sum_is_exact(f(0.1), f(0.2), f(0.1 + 0.2))
        assert not X.sum_is_exact(f(1e16), f(1.0), f(1e16 + 1.0))

    def test_zero_operands(self):
        assert X.sum_is_exact(f(0.0), f(0.0), f(0.0))
        assert X.sum_is_exact(f(7.0), f(0.0), f(7.0))

    def test_subnormals(self):
        tiny = 5e-324
        assert X.sum_is_exact(f(tiny), f(tiny), f(2 * tiny))


class TestProduct:
    def test_exact(self):
        assert X.product_is_exact(f(1.5), f(2.0), f(3.0))
        assert X.product_is_exact(f(0.0), f(123.0), f(0.0))
        assert X.product_is_exact(f(-4.0), f(0.25), f(-1.0))

    def test_inexact(self):
        assert not X.product_is_exact(f(0.1), f(0.1), f(0.1 * 0.1))

    def test_vs_fraction_ground_truth(self):
        import random

        rng = random.Random(7)
        for _ in range(300):
            a = rng.uniform(-100, 100)
            b = rng.uniform(-100, 100)
            r = a * b
            exact = Fraction(a) * Fraction(b) == Fraction(r)
            assert X.product_is_exact(f(a), f(b), f(r)) == exact


class TestQuotient:
    def test_exact(self):
        assert X.quotient_is_exact(f(6.0), f(2.0), f(3.0))
        assert X.quotient_is_exact(f(1.0), f(4.0), f(0.25))
        assert X.quotient_is_exact(f(0.0), f(5.0), f(0.0))

    def test_inexact(self):
        assert not X.quotient_is_exact(f(1.0), f(3.0), f(1.0 / 3.0))

    def test_vs_fraction(self):
        import random

        rng = random.Random(8)
        for _ in range(300):
            a = rng.uniform(-100, 100)
            b = rng.uniform(0.001, 100)
            r = a / b
            exact = Fraction(a) / Fraction(b) == Fraction(r)
            assert X.quotient_is_exact(f(a), f(b), f(r)) == exact


class TestSqrtFma:
    def test_sqrt_exact(self):
        assert X.sqrt_is_exact(f(4.0), f(2.0))
        assert X.sqrt_is_exact(f(2.25), f(1.5))
        assert X.sqrt_is_exact(f(0.0), f(0.0))

    def test_sqrt_inexact(self):
        import math

        assert not X.sqrt_is_exact(f(2.0), f(math.sqrt(2.0)))

    def test_fma_exact(self):
        assert X.fma_is_exact(f(2.0), f(3.0), f(4.0), f(10.0))
        assert X.fma_is_exact(f(1.0), f(1.0), f(-1.0), f(0.0))

    def test_fma_inexact(self):
        a = 1.0 + 2.0**-30
        import math

        fused = math.fma(a, a, -1.0) if hasattr(math, "fma") else None
        # regardless of host fma availability: separate rounding differs
        assert not X.fma_is_exact(f(a), f(a), f(-1.0), f(a * a - 1.0)) or \
            a * a - 1.0 == 2.0**-29 + 2.0**-60
        del fused


class TestIntHelpers:
    def test_int_fits(self):
        assert X.int_fits_f64(0)
        assert X.int_fits_f64(1 << 53)
        assert X.int_fits_f64(-(1 << 53))
        assert not X.int_fits_f64((1 << 53) + 1)
        assert X.int_fits_f64(1 << 62)  # power of two always fits

    def test_is_integral(self):
        assert X.f64_is_integral(f(5.0))
        assert X.f64_is_integral(f(-0.0))
        assert X.f64_is_integral(f(1e300))
        assert not X.f64_is_integral(f(2.5))

    def test_values_equal(self):
        assert X.values_equal(f(0.0), f(-0.0))
        assert X.values_equal(f(2.0), f(2.0))
        assert not X.values_equal(f(2.0), f(2.0000000001))
