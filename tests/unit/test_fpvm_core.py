"""Unit tests for NaN-boxing, the shadow store, decoder, and binding."""

import pytest

from repro.errors import MachineError
from repro.ieee.bits import (
    F64_DEFAULT_QNAN,
    F64_POS_INF,
    f64_to_bits,
    is_snan64,
)
from repro.isa.instructions import Instruction
from repro.isa.operands import Imm, Mem, Reg, Xmm
from repro.fpvm.nanbox import MAX_HANDLE, NaNBoxCodec
from repro.fpvm.shadow import ShadowStore
from repro.fpvm.decoder import DecodeCache, FPVMOp, decode_instruction
from repro.fpvm.binding import BindCache, GprLoc, MemLoc, XmmLoc, bind
from conftest import asm_program
from repro.machine.loader import load_binary


class TestNaNBox:
    def test_roundtrip(self):
        c = NaNBoxCodec()
        for h in (1, 2, 12345, MAX_HANDLE):
            bits = c.encode(h)
            assert c.is_box(bits)
            assert is_snan64(bits)
            assert c.decode(bits) == h

    def test_handle_bounds(self):
        c = NaNBoxCodec()
        with pytest.raises(ValueError):
            c.encode(0)  # would encode an infinity
        with pytest.raises(ValueError):
            c.encode(MAX_HANDLE + 1)

    def test_boxes_are_not_values(self):
        c = NaNBoxCodec()
        assert not c.is_box(f64_to_bits(1.0))
        assert not c.is_box(F64_DEFAULT_QNAN)  # quiet NaN isn't a box
        assert not c.is_box(F64_POS_INF)
        assert not c.is_box(0)

    def test_sign_tag(self):
        assert NaNBoxCodec(tag_sign=True).encode(5) >> 63 == 1
        assert NaNBoxCodec(tag_sign=False).encode(5) >> 63 == 0
        # decode accepts both
        c = NaNBoxCodec()
        assert c.decode(NaNBoxCodec(tag_sign=False).encode(5)) == 5

    def test_candidate_word_predicate(self):
        c = NaNBoxCodec()
        assert c.is_candidate_word(c.encode(9))
        assert not c.is_candidate_word(F64_DEFAULT_QNAN)
        assert not c.is_candidate_word(f64_to_bits(3.14))
        assert not c.is_candidate_word(F64_POS_INF)


class TestShadowStore:
    def test_alloc_get(self):
        s = ShadowStore()
        h = s.alloc("value")
        assert s.get(h) == "value"
        assert s.contains(h)
        assert s.live_count == 1

    def test_handles_unique_and_nonzero(self):
        s = ShadowStore()
        hs = {s.alloc(i) for i in range(100)}
        assert len(hs) == 100 and 0 not in hs

    def test_free_and_reuse(self):
        s = ShadowStore()
        h = s.alloc(1)
        s.free(h)
        assert s.get(h) is None
        h2 = s.alloc(2)
        assert h2 == h  # freelist reuse keeps handles small
        assert s.total_freed == 1

    def test_mark_sweep(self):
        s = ShadowStore()
        keep = s.alloc("keep")
        drop = s.alloc("drop")
        s.clear_marks()
        assert s.mark(keep)
        assert not s.mark(999)  # unknown handle
        assert s.sweep() == 1
        assert s.get(keep) == "keep" and s.get(drop) is None


def _ins(mnemonic, *ops):
    return Instruction(mnemonic, tuple(ops), addr=0x400000)


class TestDecoder:
    def test_scalar_ops(self):
        d = decode_instruction(_ins("addsd", Xmm(0), Xmm(1)))
        assert d.op is FPVMOp.ADD and d.lanes == 1
        assert d.dst == ("xmm", 0, 0)
        assert d.srcs == (("xmm", 0, 0), ("xmm", 1, 0))
        assert d.arith_name == "add"

    def test_packed_two_lanes(self):
        d = decode_instruction(_ins("mulpd", Xmm(2), Xmm(3)))
        assert d.op is FPVMOp.MUL and d.lanes == 2

    def test_mem_operand_template(self):
        m = Mem(base="rax", disp=8)
        d = decode_instruction(_ins("divsd", Xmm(0), m))
        assert d.srcs[1] == ("mem", m)

    def test_sqrt_single_source(self):
        d = decode_instruction(_ins("sqrtsd", Xmm(1), Xmm(2)))
        assert d.op is FPVMOp.SQRT and len(d.srcs) == 1

    def test_fma_three_sources(self):
        d = decode_instruction(_ins("fmaddsd", Xmm(0), Xmm(1), Xmm(2)))
        assert d.op is FPVMOp.FMA
        assert d.srcs == (("xmm", 1, 0), ("xmm", 2, 0), ("xmm", 0, 0))

    def test_compares(self):
        assert decode_instruction(
            _ins("ucomisd", Xmm(0), Xmm(1))).op is FPVMOp.UCOMI
        d = decode_instruction(_ins("cmpsd", Xmm(0), Xmm(1), Imm(2)))
        assert d.op is FPVMOp.CMP_PRED and d.imm == 2

    def test_conversions(self):
        assert decode_instruction(
            _ins("cvtsi2sd", Xmm(0), Reg("rax"))).op is FPVMOp.CVT_I64_F64
        assert decode_instruction(
            _ins("cvtsi2sd", Xmm(0), Reg("eax"))).op is FPVMOp.CVT_I32_F64
        assert decode_instruction(
            _ins("cvttsd2si", Reg("rax"), Xmm(0))).op is \
            FPVMOp.CVT_F64_I64_TRUNC
        assert decode_instruction(
            _ins("cvtsd2si", Reg("eax"), Xmm(0))).op is FPVMOp.CVT_F64_I32
        assert decode_instruction(
            _ins("cvtsd2ss", Xmm(0), Xmm(1))).op is FPVMOp.CVT_F64_F32
        d = decode_instruction(_ins("roundsd", Xmm(0), Xmm(1), Imm(3)))
        assert d.op is FPVMOp.ROUND and d.imm == 3

    def test_f32_ops(self):
        assert decode_instruction(
            _ins("addss", Xmm(0), Xmm(1))).op is FPVMOp.ADD32

    def test_non_trapping_rejected(self):
        with pytest.raises(MachineError):
            decode_instruction(_ins("movsd", Xmm(0), Xmm(1)))
        with pytest.raises(MachineError):
            decode_instruction(_ins("xorpd", Xmm(0), Xmm(1)))

    def test_cache_hit_rate(self):
        cache = DecodeCache()
        ins = _ins("addsd", Xmm(0), Xmm(1))
        _, hit1 = cache.lookup(ins)
        _, hit2 = cache.lookup(ins)
        _, hit3 = cache.lookup(ins)
        assert (hit1, hit2, hit3) == (False, True, True)
        assert cache.hit_rate == pytest.approx(2 / 3)

    def test_cache_invalidates_on_replacement(self):
        cache = DecodeCache()
        ins = _ins("addsd", Xmm(0), Xmm(1))
        cache.lookup(ins)
        other = _ins("subsd", Xmm(0), Xmm(1))  # same address
        d, hit = cache.lookup(other)
        assert not hit and d.op is FPVMOp.SUB


class TestBinding:
    def _machine(self):
        def body(a):
            a.emit("nop")

        def data(a):
            a.double("x", 4.25)

        binary = asm_program(body, data=data)
        return load_binary(binary), binary

    def test_xmm_loc(self):
        m, _ = self._machine()
        loc = XmmLoc(m, 3, 0)
        loc.write(f64_to_bits(7.0))
        assert loc.read() == f64_to_bits(7.0)
        assert m.regs.xmm_lo(3) == f64_to_bits(7.0)

    def test_mem_loc(self):
        m, b = self._machine()
        addr = b.symbols["x"]
        loc = MemLoc(m, addr)
        assert loc.read() == f64_to_bits(4.25)
        loc.write(f64_to_bits(1.0))
        assert m.memory.read(addr, 8) == f64_to_bits(1.0)

    def test_gpr_loc(self):
        m, _ = self._machine()
        loc = GprLoc(m, "rbx", 8)
        loc.write(77)
        assert m.regs.get_gpr("rbx") == 77

    def test_bind_resolves_address_at_trap_time(self):
        m, b = self._machine()
        mem_op = Mem(base="rax", disp=0)
        ins = _ins("addsd", Xmm(0), mem_op)
        decoded = decode_instruction(ins)
        m.regs.set_gpr("rax", b.symbols["x"])
        bound = bind(m, decoded)
        assert bound.lanes[0].srcs[1].read() == f64_to_bits(4.25)
        # rebinding after the register moves resolves differently
        m.regs.set_gpr("rax", b.symbols["x"] - 8)
        bound2 = bind(m, decoded)
        assert bound2.lanes[0].srcs[1].addr == b.symbols["x"] - 8

    def test_bind_packed_lane_addresses(self):
        m, b = self._machine()
        mem_op = Mem(base="rax", disp=0, size=16)
        decoded = decode_instruction(_ins("addpd", Xmm(0), mem_op))
        m.regs.set_gpr("rax", b.symbols["x"])
        bound = bind(m, decoded)
        assert bound.lanes[0].srcs[1].addr == b.symbols["x"]
        assert bound.lanes[1].srcs[1].addr == b.symbols["x"] + 8

    def test_bind_cache_hit_refreshes_mem_address(self):
        """A cached BoundInst is reused, but memory EAs still track the
        current register state (the bind-time resolution contract)."""
        m, b = self._machine()
        mem_op = Mem(base="rax", disp=0)
        decoded = decode_instruction(_ins("addsd", Xmm(0), mem_op))
        cache = BindCache()
        m.regs.set_gpr("rax", b.symbols["x"])
        bound, hit = cache.lookup(m, decoded)
        assert not hit
        assert bound.lanes[0].srcs[1].read() == f64_to_bits(4.25)
        m.regs.set_gpr("rax", b.symbols["x"] - 8)
        bound2, hit2 = cache.lookup(m, decoded)
        assert hit2 and bound2 is bound
        assert bound2.lanes[0].srcs[1].addr == b.symbols["x"] - 8
        assert cache.hit_rate == 0.5

    def test_bind_cache_identity_guard(self):
        """A re-decoded instruction at the same address must rebind."""
        m, b = self._machine()
        decoded = decode_instruction(_ins("addsd", Xmm(0), Xmm(1)))
        cache = BindCache()
        m.regs.set_gpr("rax", b.symbols["x"])
        cache.lookup(m, decoded)
        other = decode_instruction(_ins("subsd", Xmm(0), Xmm(1)))
        _, hit = cache.lookup(m, other)  # same address, new decode
        assert not hit
