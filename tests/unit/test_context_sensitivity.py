"""k=1 call-string context sensitivity in the VSA.

The classic imprecision this kills: a helper called with pointers into
two *different* caller frames.  Context-insensitively the two
``StackAddr`` arguments join to TOP at the helper's entry, its FP
stores escape to everything, and every integer load in the program
becomes a "sink".  With k=1 call strings each call site gets its own
abstract state and the stores stay exact.
"""

from repro.analysis import analyze
from repro.analysis.vsa import ValueSetAnalysis
from repro.compiler import compile_source

TWO_FRAMES_SRC = """
long ints[2];

void fill(double* dst, double v) {
    dst[0] = v;
    dst[1] = v * 2.0;
}

double userA() {
    double x[2];
    fill(x, 1.5);
    return x[0] + x[1];
}

double userB() {
    double y[2];
    fill(y, 2.5);
    return y[0] + y[1];
}

long main() {
    double s = userA() + userB();
    ints[0] = 7;
    ints[1] = 9;
    long t = ints[0] + ints[1];
    printf("%.17g %d\\n", s, t);
    return 0;
}
"""


class TestCallStrings:
    def test_k0_merges_frames_to_top_and_over_patches(self):
        vsa = ValueSetAnalysis(compile_source(TWO_FRAMES_SRC), k=0)
        report = vsa.run()
        assert len(vsa.contexts) == 1
        # the joined dst pointer escapes: spurious sinks appear
        assert len(report.sinks) > 0

    def test_k1_splits_contexts_and_stays_exact(self):
        binary = compile_source(TWO_FRAMES_SRC)
        report = analyze(binary, cache=False)
        assert report.contexts > 1
        # the integer array is never FP-written; no load is patched
        assert report.sinks == []
        assert report.pruned_sinks == []

    def test_k1_strictly_sharper_than_k0(self):
        v0 = ValueSetAnalysis(compile_source(TWO_FRAMES_SRC), k=0)
        r0 = v0.run()
        r1 = analyze(compile_source(TWO_FRAMES_SRC), cache=False)
        assert len(r1.sinks) < len(r0.sinks)

    def test_contexts_are_call_sites(self):
        """Every non-root context is the address of a call instruction."""
        binary = compile_source(TWO_FRAMES_SRC)
        vsa = ValueSetAnalysis(binary)
        vsa.run()
        call_sites = {ins.addr for ins in binary.text
                      if ins.mnemonic == "call"}
        assert 0 in vsa.contexts
        assert (vsa.contexts - {0}) <= call_sites
        # fill is reached from two distinct call sites
        assert len(vsa.contexts) >= 3

    def test_k0_and_k1_agree_on_single_caller(self):
        """With one caller per function the two analyses coincide."""
        src = """
        double buf[2];
        void fill(double* dst) { dst[0] = 3.25; }
        long main() {
            fill(buf);
            printf("%.17g\\n", buf[0]);
            return 0;
        }
        """
        r0 = ValueSetAnalysis(compile_source(src), k=0).run()
        r1 = analyze(compile_source(src), cache=False)
        assert sorted(r0.sinks) == sorted(r1.sinks)
        assert r0.bitwise_sites == r1.bitwise_sites
