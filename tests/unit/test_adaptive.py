"""Unit tests for the adaptive-precision arithmetic (§4.3 future work)."""

import pytest

from repro.ieee.bits import bits_to_f64, f64_to_bits
from repro.arith import AdaptiveBigFloatArithmetic, VanillaArithmetic
from repro.compiler import compile_source
from repro.session import Session


def F(a, x: float):
    return a.from_f64_bits(f64_to_bits(x))


class TestEscalation:
    def test_starts_at_initial(self):
        a = AdaptiveBigFloatArithmetic(64, 1024)
        assert a.precision == 64
        assert "adaptive" in a.name

    def test_catastrophic_cancellation_escalates(self):
        a = AdaptiveBigFloatArithmetic(64, 1024, cancel_threshold=20)
        x = F(a, 1.0)
        y = F(a, 1.0 + 2.0**-40)
        a.sub(y, x)  # loses ~40 leading bits
        assert a.escalations == 1
        assert a.precision == 128
        assert a.cancellations_seen == 1

    def test_total_cancellation_escalates(self):
        a = AdaptiveBigFloatArithmetic(64, 256)
        x = F(a, 1.5)
        a.sub(x, x)  # exact zero: full loss
        assert a.escalations == 1

    def test_benign_ops_do_not_escalate(self):
        a = AdaptiveBigFloatArithmetic(64, 1024)
        x, y = F(a, 1.5), F(a, 2.25)
        for _ in range(50):
            a.add(x, y)
            a.mul(x, y)
            a.div(x, y)
        assert a.escalations == 0

    def test_capped_at_maximum(self):
        a = AdaptiveBigFloatArithmetic(64, 256)
        for k in range(10):
            x = F(a, 1.0)
            y = F(a, 1.0 + 2.0**-45)
            a.sub(y, x)
        assert a.precision == 256
        assert a.escalations == 2  # 64 -> 128 -> 256

    def test_overflow_is_not_cancellation(self):
        a = AdaptiveBigFloatArithmetic(64, 256)
        big = F(a, 1e308)
        a.add(big, big)  # -> inf
        assert a.escalations == 0

    def test_cost_model_follows_precision(self):
        a = AdaptiveBigFloatArithmetic(64, 1024)
        before = a.op_cycles("div")
        a.sub(F(a, 1.0), F(a, 1.0 + 2.0**-45))
        assert a.op_cycles("div") > before

    def test_validation_args(self):
        with pytest.raises(ValueError):
            AdaptiveBigFloatArithmetic(512, 256)
        with pytest.raises(ValueError):
            AdaptiveBigFloatArithmetic(64, 128, growth=0.5)


class TestUnderFPVM:
    SRC = """
    long main() {
        // a telescoping sum with a catastrophic cancellation each step
        double s = 0.0;
        for (long i = 1; i < 30; i = i + 1) {
            double a = 1.0 / (double)i;
            double b = 1.0 / ((double)i + 1.0);
            double t = (a - b) - (a - b);   // total cancellation
            s = s + (a - b) + t;
        }
        printf("%.12g\\n", s);
        return 0;
    }
    """

    def test_runs_and_escalates(self):
        arith = AdaptiveBigFloatArithmetic(64, 512, cancel_threshold=30)
        res = Session(lambda: compile_source(self.SRC), arith).run()
        assert res.exit_code == 0
        assert arith.escalations >= 1
        # result is the telescoping sum 1 - 1/30
        assert abs(float(res.stdout) - (1 - 1 / 30)) < 1e-9

    def test_mixed_precision_values_interoperate(self):
        """Shadow values created before an escalation must combine with
        values created after it."""
        a = AdaptiveBigFloatArithmetic(64, 512)
        early = a.div(F(a, 1.0), F(a, 3.0))  # 64-bit value
        a.sub(F(a, 1.0), F(a, 1.0 + 2.0**-45))  # escalate
        late = a.div(F(a, 1.0), F(a, 3.0))   # 128-bit value
        combined = a.add(early, late)
        assert bits_to_f64(a.to_f64_bits(combined)) == \
            pytest.approx(2.0 / 3.0, rel=1e-15)
        assert early.prec < late.prec
