"""Unit tests for the soft FPU: values, special cases, and — the part
FPVM's trap predicate lives on — the MXCSR flag outcomes."""

import math

import pytest

from repro.ieee import bits as B
from repro.ieee.softfloat import Flags, SoftFPU

fpu = SoftFPU()


def f(x: float) -> int:
    return B.f64_to_bits(x)


def v(bits: int) -> float:
    return B.bits_to_f64(bits)


SNAN = B.F64_EXP_MASK | 0x29A  # signaling NaN with payload
QNAN = B.F64_DEFAULT_QNAN


class TestAddSub:
    def test_exact_add_no_flags(self):
        r, fl = fpu.add64(f(2.0), f(3.0))
        assert v(r) == 5.0 and fl == 0

    def test_inexact_add_sets_pe(self):
        r, fl = fpu.add64(f(0.1), f(0.2))
        assert v(r) == 0.1 + 0.2
        assert fl == Flags.PE

    def test_large_small_inexact(self):
        r, fl = fpu.add64(f(1e16), f(1.0))
        assert fl & Flags.PE

    def test_exact_cancellation(self):
        r, fl = fpu.sub64(f(1.5), f(1.5))
        assert v(r) == 0.0 and fl == 0

    def test_overflow(self):
        r, fl = fpu.add64(f(1.7e308), f(1.7e308))
        assert v(r) == math.inf
        assert fl & Flags.OE and fl & Flags.PE

    def test_inf_plus_inf(self):
        r, fl = fpu.add64(f(math.inf), f(math.inf))
        assert v(r) == math.inf and fl == 0

    def test_inf_minus_inf_invalid(self):
        r, fl = fpu.add64(f(math.inf), f(-math.inf))
        assert B.is_qnan64(r) and fl == Flags.IE

    def test_sub_inf_same_sign_invalid(self):
        r, fl = fpu.sub64(f(math.inf), f(math.inf))
        assert B.is_qnan64(r) and fl == Flags.IE

    def test_snan_operand_raises_ie(self):
        r, fl = fpu.add64(SNAN, f(1.0))
        assert fl & Flags.IE
        assert B.is_qnan64(r)
        assert r & 0x29A == 0x29A  # payload preserved, quieted

    def test_qnan_propagates_quietly(self):
        r, fl = fpu.add64(QNAN, f(1.0))
        assert B.is_qnan64(r) and fl == 0

    def test_src1_nan_priority(self):
        a = QNAN | 0x111
        b = B.quiet64(B.F64_EXP_MASK | 0x222)
        r, _ = fpu.add64(a, b)
        assert r & 0x111 == 0x111

    def test_denormal_operand_sets_de(self):
        r, fl = fpu.add64(f(5e-324), f(1.0))
        assert fl & Flags.DE

    def test_underflow_on_tiny_sub(self):
        a = f(2.2250738585072014e-308)  # smallest normal
        b = f(2.2250738585072019e-308)
        r, fl = fpu.sub64(a, b)
        # result is denormal; difference is exact here, so no UE unless PE
        assert B.is_denormal64(r) or fl & Flags.UE or fl == 0


class TestMulDiv:
    def test_exact_mul(self):
        r, fl = fpu.mul64(f(1.5), f(2.0))
        assert v(r) == 3.0 and fl == 0

    def test_inexact_mul(self):
        r, fl = fpu.mul64(f(0.1), f(0.1))
        assert fl == Flags.PE

    def test_mul_overflow(self):
        r, fl = fpu.mul64(f(1e200), f(1e200))
        assert v(r) == math.inf and fl & Flags.OE

    def test_mul_underflow(self):
        r, fl = fpu.mul64(f(1e-200), f(1e-200))
        assert fl & Flags.UE and fl & Flags.PE

    def test_zero_times_inf_invalid(self):
        r, fl = fpu.mul64(f(0.0), f(math.inf))
        assert B.is_qnan64(r) and fl == Flags.IE

    def test_exact_div(self):
        r, fl = fpu.div64(f(6.0), f(2.0))
        assert v(r) == 3.0 and fl == 0

    def test_inexact_div(self):
        r, fl = fpu.div64(f(1.0), f(3.0))
        assert fl == Flags.PE

    def test_div_by_zero(self):
        r, fl = fpu.div64(f(1.0), f(0.0))
        assert v(r) == math.inf and fl == Flags.ZE

    def test_div_by_neg_zero(self):
        r, fl = fpu.div64(f(1.0), f(-0.0))
        assert v(r) == -math.inf and fl == Flags.ZE

    def test_zero_over_zero_invalid(self):
        r, fl = fpu.div64(f(0.0), f(0.0))
        assert B.is_qnan64(r) and fl == Flags.IE

    def test_inf_over_inf_invalid(self):
        r, fl = fpu.div64(f(math.inf), f(math.inf))
        assert B.is_qnan64(r) and fl == Flags.IE

    def test_zero_over_x_signed(self):
        r, fl = fpu.div64(f(-0.0), f(2.0))
        assert r == B.F64_SIGN_BIT and fl == 0


class TestSqrtFma:
    def test_exact_sqrt(self):
        r, fl = fpu.sqrt64(f(4.0))
        assert v(r) == 2.0 and fl == 0

    def test_inexact_sqrt(self):
        r, fl = fpu.sqrt64(f(2.0))
        assert v(r) == math.sqrt(2.0) and fl == Flags.PE

    def test_sqrt_negative_invalid(self):
        r, fl = fpu.sqrt64(f(-1.0))
        assert B.is_qnan64(r) and fl == Flags.IE

    def test_sqrt_neg_zero(self):
        r, fl = fpu.sqrt64(f(-0.0))
        assert r == B.F64_SIGN_BIT and fl == 0

    def test_sqrt_inf(self):
        r, fl = fpu.sqrt64(B.F64_POS_INF)
        assert v(r) == math.inf and fl == 0

    def test_fma_single_rounding(self):
        # (1+2^-30)^2 - 1: separate mul drops the 2^-60 term (below
        # half an ulp of the product), the fused form keeps it
        a, b, c = 1.0 + 2.0**-30, 1.0 + 2.0**-30, -1.0
        fused, _ = fpu.fma64(f(a), f(b), f(c))
        mul_r, _ = fpu.mul64(f(a), f(b))
        sep, _ = fpu.add64(mul_r, f(c))
        assert v(fused) == 2.0**-29 + 2.0**-60
        assert v(sep) == 2.0**-29
        assert v(sep) != v(fused)

    def test_fma_exact(self):
        r, fl = fpu.fma64(f(2.0), f(3.0), f(4.0))
        assert v(r) == 10.0 and fl == 0

    def test_fma_inf_cancellation_invalid(self):
        r, fl = fpu.fma64(f(math.inf), f(1.0), f(-math.inf))
        assert B.is_qnan64(r) and fl & Flags.IE


class TestMinMax:
    def test_min_basic(self):
        r, fl = fpu.min64(f(1.0), f(2.0))
        assert v(r) == 1.0 and fl == 0

    def test_minsd_nan_returns_src2(self):
        r, fl = fpu.min64(QNAN, f(2.0))
        assert v(r) == 2.0 and fl & Flags.IE

    def test_minsd_src2_nan_forwarded(self):
        r, fl = fpu.min64(f(2.0), QNAN)
        assert B.is_nan64(r) and fl & Flags.IE

    def test_minsd_both_zero_returns_src2(self):
        r, _ = fpu.min64(f(0.0), f(-0.0))
        assert r == B.F64_SIGN_BIT
        r, _ = fpu.min64(f(-0.0), f(0.0))
        assert r == 0

    def test_max_basic(self):
        r, _ = fpu.max64(f(-1.0), f(-2.0))
        assert v(r) == -1.0


class TestCompare:
    def test_ucomi_ordering(self):
        assert fpu.ucomi64(f(2.0), f(1.0))[0] == (0, 0, 0)  # >
        assert fpu.ucomi64(f(1.0), f(2.0))[0] == (0, 0, 1)  # <
        assert fpu.ucomi64(f(2.0), f(2.0))[0] == (1, 0, 0)  # ==

    def test_ucomi_qnan_unordered_no_ie(self):
        flags_triple, fl = fpu.ucomi64(QNAN, f(1.0))
        assert flags_triple == (1, 1, 1) and fl == 0

    def test_ucomi_snan_raises_ie(self):
        _, fl = fpu.ucomi64(SNAN, f(1.0))
        assert fl == Flags.IE

    def test_comi_any_nan_raises_ie(self):
        _, fl = fpu.comi64(QNAN, f(1.0))
        assert fl == Flags.IE

    def test_zero_signs_equal(self):
        assert fpu.ucomi64(f(0.0), f(-0.0))[0] == (1, 0, 0)

    @pytest.mark.parametrize("pred,a,b,expect", [
        (0, 1.0, 1.0, True), (0, 1.0, 2.0, False),
        (1, 1.0, 2.0, True), (1, 2.0, 1.0, False),
        (2, 2.0, 2.0, True), (3, 1.0, 1.0, False),
        (4, 1.0, 2.0, True), (5, 2.0, 1.0, True),
        (6, 2.0, 1.0, True), (7, 1.0, 2.0, True),
    ])
    def test_cmp_predicates(self, pred, a, b, expect):
        r, _ = fpu.cmp64(f(a), f(b), pred)
        assert (r == 0xFFFF_FFFF_FFFF_FFFF) == expect

    def test_cmp_unordered_predicates(self):
        assert fpu.cmp64(QNAN, f(1.0), 3)[0] != 0  # UNORD true
        assert fpu.cmp64(QNAN, f(1.0), 7)[0] == 0  # ORD false
        assert fpu.cmp64(QNAN, f(1.0), 4)[0] != 0  # NEQ true on NaN


class TestConversions:
    def test_i64_to_f64_exact(self):
        r, fl = fpu.cvt_i64_to_f64(42)
        assert v(r) == 42.0 and fl == 0

    def test_i64_to_f64_inexact(self):
        big = (1 << 53) + 1
        r, fl = fpu.cvt_i64_to_f64(big)
        assert fl == Flags.PE

    def test_i64_negative(self):
        r, fl = fpu.cvt_i64_to_f64((-7) & ((1 << 64) - 1))
        assert v(r) == -7.0

    def test_i32_always_exact(self):
        r, fl = fpu.cvt_i32_to_f64(0xFFFF_FFFF)  # -1 as u32
        assert v(r) == -1.0 and fl == 0

    def test_f64_to_i64_trunc(self):
        r, fl = fpu.cvt_f64_to_i64(f(2.9), truncate=True)
        assert r == 2 and fl == Flags.PE
        r, fl = fpu.cvt_f64_to_i64(f(-2.9), truncate=True)
        assert r == (-2) & ((1 << 64) - 1)

    def test_f64_to_i64_nearest_even(self):
        r, _ = fpu.cvt_f64_to_i64(f(2.5), truncate=False)
        assert r == 2
        r, _ = fpu.cvt_f64_to_i64(f(3.5), truncate=False)
        assert r == 4

    def test_f64_to_i64_exact_no_pe(self):
        r, fl = fpu.cvt_f64_to_i64(f(-8.0), truncate=True)
        assert fl == 0

    def test_f64_to_int_nan_indefinite(self):
        r, fl = fpu.cvt_f64_to_i64(QNAN, truncate=True)
        assert r == 1 << 63 and fl == Flags.IE
        r, fl = fpu.cvt_f64_to_i32(f(1e300), truncate=True)
        assert r == 1 << 31 and fl == Flags.IE

    def test_f64_to_f32_exact(self):
        r, fl = fpu.cvt_f64_to_f32(f(1.5))
        assert B.bits_to_f32(r) == 1.5 and fl == 0

    def test_f64_to_f32_inexact(self):
        r, fl = fpu.cvt_f64_to_f32(f(0.1))
        assert fl & Flags.PE

    def test_f64_to_f32_overflow(self):
        r, fl = fpu.cvt_f64_to_f32(f(1e300))
        assert B.is_inf32(r) and fl & Flags.OE

    def test_f32_to_f64_exact(self):
        r, fl = fpu.cvt_f32_to_f64(B.f32_to_bits(1.5))
        assert v(r) == 1.5 and fl == 0

    def test_f32_snan_quieted(self):
        r, fl = fpu.cvt_f32_to_f64(0x7F80_0001)
        assert B.is_qnan64(r) and fl == Flags.IE

    @pytest.mark.parametrize("mode,x,expect", [
        (0, 2.5, 2.0), (0, 3.5, 4.0), (1, 2.7, 2.0), (1, -2.1, -3.0),
        (2, 2.1, 3.0), (2, -2.9, -2.0), (3, 2.9, 2.0), (3, -2.9, -2.0),
    ])
    def test_roundsd(self, mode, x, expect):
        r, fl = fpu.round64(f(x), mode)
        assert v(r) == expect and fl == Flags.PE

    def test_roundsd_exact_no_pe(self):
        r, fl = fpu.round64(f(4.0), 0)
        assert v(r) == 4.0 and fl == 0

    def test_roundsd_negative_zero_result(self):
        r, _ = fpu.round64(f(-0.3), 0)
        assert r == B.F64_SIGN_BIT  # -0.0


class TestFloat32Arith:
    def test_add32(self):
        a = B.f32_to_bits(1.5)
        b = B.f32_to_bits(2.25)
        r, fl = fpu.add32(a, b)
        assert B.bits_to_f32(r) == 3.75 and fl == 0

    def test_add32_inexact(self):
        import numpy as np

        a = B.f32_to_bits(0.1)
        b = B.f32_to_bits(0.2)
        r, fl = fpu.add32(a, b)
        assert B.bits_to_f32(r) == float(np.float32(0.1) + np.float32(0.2))
        assert fl & Flags.PE

    def test_div32_by_zero(self):
        r, fl = fpu.div32(B.f32_to_bits(1.0), 0)
        assert B.is_inf32(r) and fl & Flags.ZE

    def test_mul32_overflow(self):
        big = B.f32_to_bits(1e38)
        r, fl = fpu.mul32(big, big)
        assert B.is_inf32(r) and fl & Flags.OE

    def test_nan32_propagation(self):
        r, fl = fpu.add32(0x7F80_0001, B.f32_to_bits(1.0))
        assert B.is_nan32(r) and fl & Flags.IE


class TestFlagsDescribe:
    def test_describe(self):
        assert Flags.describe(0) == "-"
        assert Flags.describe(Flags.IE | Flags.PE) == "IE|PE"
        assert "OE" in Flags.describe(Flags.ALL)
