"""Unit tests for the fpc compiler: lexer, parser, codegen semantics."""

import math

import pytest

from repro.errors import CompileError
from repro.compiler import compile_source
from repro.compiler.lexer import tokenize
from repro.compiler.parser import parse
from repro.compiler import ast as A
from repro.machine.loader import load_binary


def run_src(src: str):
    m = load_binary(compile_source(src))
    m.run()
    return m


def out(src: str) -> str:
    return "".join(run_src(src).stdout)


class TestLexer:
    def test_tokens(self):
        toks = tokenize("double x = 1.5; // comment\nx = x + 2;")
        kinds = [t.kind for t in toks]
        assert kinds == ["kw", "ident", "=", "fnum", ";", "ident", "=",
                         "ident", "+", "num", ";", "eof"]

    def test_numbers(self):
        toks = tokenize("1 2.5 1e3 0x10 1.5e-2")
        assert [t.value for t in toks[:-1]] == [1, 2.5, 1000.0, 16, 0.015]

    def test_string_escapes(self):
        toks = tokenize(r'"a\nb\tc\\"')
        assert toks[0].value == "a\nb\tc\\"

    def test_block_comment(self):
        toks = tokenize("a /* stuff \n more */ b")
        assert [t.value for t in toks[:-1]] == ["a", "b"]

    def test_operators_longest_match(self):
        toks = tokenize("a<<b <= c == d && e")
        assert [t.kind for t in toks[:-1]] == \
            ["ident", "<<", "ident", "<=", "ident", "==", "ident", "&&",
             "ident"]

    def test_errors(self):
        with pytest.raises(CompileError):
            tokenize('"unterminated')
        with pytest.raises(CompileError):
            tokenize("@")


class TestParser:
    def test_function_structure(self):
        prog = parse("long main() { return 0; }")
        assert len(prog.functions) == 1
        f = prog.functions[0]
        assert f.name == "main" and f.ret_type == "long"

    def test_globals(self):
        prog = parse("double g = 1.5; long arr[10]; double t[2] = {1.0, 2.0};")
        assert prog.globals[0].init == 1.5
        assert prog.globals[1].array_size == 10
        assert prog.globals[2].init == [1.0, 2.0]

    def test_precedence(self):
        prog = parse("long main() { long x = 1 + 2 * 3; return x; }")
        decl = prog.functions[0].body.stmts[0]
        assert isinstance(decl.init, A.BinOp) and decl.init.op == "+"
        assert decl.init.right.op == "*"

    def test_cast_vs_parens(self):
        prog = parse("long main() { long a = (long) 2.5; long b = (a); "
                     "return a + b; }")
        assert isinstance(prog.functions[0].body.stmts[0].init, A.Cast)

    def test_else_if_chain(self):
        parse("""
        long main() {
            if (1) { return 1; } else if (2) { return 2; } else { return 3; }
        }
        """)

    def test_bad_assignment_target(self):
        with pytest.raises(CompileError):
            parse("long main() { 1 = 2; }")


class TestExecution:
    def test_arith_and_return(self):
        assert run_src("long main() { return 2 + 3 * 4; }").exit_code == 14

    def test_double_arith(self):
        s = out('long main() { double x = 1.5 * 4.0 - 1.0; '
                'printf("%g\\n", x); return 0; }')
        assert s == "5\n"

    def test_division_and_modulo(self):
        assert run_src("long main() { return 17 / 5 + 17 % 5; }") \
            .exit_code == 5
        assert run_src("long main() { return -17 / 5; }").exit_code == -3

    def test_bitops_shifts(self):
        assert run_src("long main() { return (1 << 10) | 5 & 12 ^ 1; }") \
            .exit_code == 1024 | (5 & 12) ^ 1

    def test_comparisons_int(self):
        src = """
        long main() {
            long ok = 1;
            if (!(1 < 2)) { ok = 0; }
            if (2 <= 1) { ok = 0; }
            if (!(3 > 2)) { ok = 0; }
            if (!(2 >= 2)) { ok = 0; }
            if (1 == 2) { ok = 0; }
            if (!(1 != 2)) { ok = 0; }
            if (!(-1 < 1)) { ok = 0; }
            return ok;
        }
        """
        assert run_src(src).exit_code == 1

    def test_comparisons_double(self):
        src = """
        long main() {
            long ok = 1;
            double a = 1.5;
            double b = 2.5;
            if (!(a < b)) { ok = 0; }
            if (a > b) { ok = 0; }
            if (!(a <= a)) { ok = 0; }
            if (!(b >= b)) { ok = 0; }
            if (a == b) { ok = 0; }
            if (!(a != b)) { ok = 0; }
            return ok;
        }
        """
        assert run_src(src).exit_code == 1

    def test_nan_compare_semantics(self):
        """C semantics: all ordered comparisons with NaN are false,
        != is true."""
        src = """
        long main() {
            double nan = sqrt(-1.0);
            long ok = 1;
            if (nan < 1.0) { ok = 0; }
            if (nan > 1.0) { ok = 0; }
            if (nan == nan) { ok = 0; }
            if (!(nan != nan)) { ok = 0; }
            return ok;
        }
        """
        assert run_src(src).exit_code == 1

    def test_logical_short_circuit(self):
        src = """
        long count = 0;
        long bump() { count = count + 1; return 1; }
        long main() {
            long a = 0 && bump();
            long b = 1 || bump();
            return count * 10 + a + b;
        }
        """
        assert run_src(src).exit_code == 1  # bump never called

    def test_while_for_break_continue(self):
        src = """
        long main() {
            long s = 0;
            for (long i = 0; i < 100; i = i + 1) {
                if (i % 2 == 0) { continue; }
                if (i > 10) { break; }
                s = s + i;
            }
            long j = 0;
            while (1) { j = j + 1; if (j == 7) { break; } }
            return s * 100 + j;
        }
        """
        assert run_src(src).exit_code == (1 + 3 + 5 + 7 + 9) * 100 + 7

    def test_functions_and_recursion(self):
        src = """
        long fib(long n) {
            if (n < 2) { return n; }
            return fib(n - 1) + fib(n - 2);
        }
        long main() { return fib(12); }
        """
        assert run_src(src).exit_code == 144

    def test_double_params_and_return(self):
        src = """
        double hyp(double a, double b) { return sqrt(a * a + b * b); }
        long main() { printf("%g\\n", hyp(3.0, 4.0)); return 0; }
        """
        assert out(src) == "5\n"

    def test_mixed_int_double_args(self):
        src = """
        double scale(double x, long k, double y) {
            return x * (double)k + y;
        }
        long main() { printf("%g\\n", scale(1.5, 4, 0.25)); return 0; }
        """
        assert out(src) == "6.25\n"

    def test_global_arrays(self):
        src = """
        double a[4];
        long idx[4] = { 3, 2, 1, 0 };
        long main() {
            for (long i = 0; i < 4; i = i + 1) { a[i] = (double)(i * i); }
            double s = 0.0;
            for (long i = 0; i < 4; i = i + 1) { s = s + a[idx[i]]; }
            printf("%g\\n", s);
            return 0;
        }
        """
        assert out(src) == "14\n"

    def test_local_arrays(self):
        src = """
        long main() {
            double buf[8];
            for (long i = 0; i < 8; i = i + 1) { buf[i] = (double)i * 0.5; }
            double s = 0.0;
            for (long i = 0; i < 8; i = i + 1) { s = s + buf[i]; }
            return (long)s;
        }
        """
        assert run_src(src).exit_code == 14

    def test_pointer_params(self):
        src = """
        void fill(double* p, long n) {
            for (long i = 0; i < n; i = i + 1) { p[i] = (double)(i + 1); }
        }
        double total(double* p, long n) {
            double s = 0.0;
            for (long i = 0; i < n; i = i + 1) { s = s + p[i]; }
            return s;
        }
        double data[5];
        long main() {
            fill(data, 5);
            return (long)total(data, 5);
        }
        """
        assert run_src(src).exit_code == 15

    def test_pointer_arithmetic_scales(self):
        src = """
        double data[4];
        long main() {
            data[2] = 9.0;
            double* p = data;
            double* q = p + 2;
            return (long)q[0];
        }
        """
        assert run_src(src).exit_code == 9

    def test_malloc_heap_arrays(self):
        src = """
        long main() {
            double* p = (double*)malloc(10 * 8);
            for (long i = 0; i < 10; i = i + 1) { p[i] = (double)i; }
            double s = 0.0;
            for (long i = 0; i < 10; i = i + 1) { s = s + p[i]; }
            free(p);
            return (long)s;
        }
        """
        assert run_src(src).exit_code == 45

    def test_casts(self):
        src = """
        long main() {
            double x = 2.9;
            long a = (long)x;
            double y = (double)a + 0.5;
            long b = (long)(-2.9);
            return a * 100 + (long)(y * 2.0) + b;
        }
        """
        assert run_src(src).exit_code == 200 + 5 - 2

    def test_unary_minus_uses_xorpd_idiom(self):
        binary = compile_source(
            "long main() { double x = 1.5; double y = -x; "
            "return (long)y; }")
        assert any(i.mnemonic == "xorpd" for i in binary.text)
        assert run_src(
            "long main() { double x = 1.5; double y = -x; "
            "return (long)(y * 2.0); }").exit_code == -3

    def test_fabs_uses_andpd_idiom(self):
        binary = compile_source(
            "long main() { double x = -2.0; return (long)fabs(x); }")
        assert any(i.mnemonic == "andpd" for i in binary.text)
        m = load_binary(binary)
        m.run()
        assert m.exit_code == 2

    def test_sqrt_inlined_to_sqrtsd(self):
        binary = compile_source(
            "long main() { return (long)sqrt(16.0); }")
        assert any(i.mnemonic == "sqrtsd" for i in binary.text)
        assert not binary.imports  # no libm call emitted

    def test_bits_intrinsics(self):
        from repro.ieee.bits import f64_to_bits

        src = """
        long main() {
            double x = 1.0;
            long b = __bits(x);
            double y = __double(b);
            printf("%d %.17g\\n", b == BITS1, y);
            return 0;
        }
        """.replace("BITS1", str(f64_to_bits(1.0)))
        assert out(src) == "1 1\n"

    def test_libm_calls(self):
        src = """
        long main() {
            printf("%.6f %.6f %.6f\\n", sin(1.0), pow(2.0, 8.0),
                   atan2(1.0, 1.0));
            return 0;
        }
        """
        assert out(src) == "0.841471 256.000000 0.785398\n"

    def test_scoping(self):
        src = """
        long main() {
            long x = 1;
            { long x = 2; }
            for (long i = 0; i < 3; i = i + 1) { }
            for (long i = 0; i < 4; i = i + 1) { x = x + i; }
            return x;
        }
        """
        assert run_src(src).exit_code == 1 + 0 + 1 + 2 + 3

    def test_truthiness_of_double(self):
        src = """
        long main() {
            double z = 0.0;
            double nz = 0.5;
            long r = 0;
            if (z) { r = r + 1; }
            if (nz) { r = r + 10; }
            while (z) { r = 1000; }
            return r;
        }
        """
        assert run_src(src).exit_code == 10

    def test_printf_string_arg(self):
        assert out('long main() { printf("%s=%d\\n", "x", 3); return 0; }') \
            == "x=3\n"


class TestCompileErrors:
    @pytest.mark.parametrize("src", [
        "long main() { return y; }",                      # undefined var
        "long main() { nofunc(); return 0; }",            # undefined call
        "long main() { double x = 1.0; return x & 1; }",  # & on double
        "long main() { break; }",                         # break outside
        "long f() { return 0; }",                         # no main
        "long main() { long x = 1; long x = 2; return x; }",  # dup in scope
        "double g; double g; long main() { return 0; }",  # dup global
        "long main() { double a[4]; a = 0.0; return 0; }",  # assign array
        "long main() { double x = 1.0; return x[0]; }",   # index non-array
    ])
    def test_rejected(self, src):
        with pytest.raises(CompileError):
            compile_source(src)
