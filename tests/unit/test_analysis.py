"""Unit tests for strided intervals, CFG recovery, and the VSA."""

import pytest

from repro.analysis.si import SI, SI_TOP
from repro.analysis.cfg import CFG
from repro.analysis.domain import (
    BOTTOM,
    TOP,
    AccessSet,
    HeapAddr,
    Num,
    StackAddr,
    add_val,
    join_vals,
    resolve_access,
)
from repro.analysis import analyze
from repro.compiler import compile_source


class TestSI:
    def test_const(self):
        c = SI.const(5)
        assert c.is_const and c.lo == 5 and c.count == 1

    def test_const_wraps_signed(self):
        c = SI.const(0xFFFF_FFFF_FFFF_FFFF)
        assert c.lo == -1

    def test_range_and_values(self):
        r = SI.range(0, 40, 8)
        assert list(r.values()) == [0, 8, 16, 24, 32, 40]
        assert r.count == 6

    def test_add(self):
        a = SI.range(0, 16, 8)
        b = SI.const(100)
        assert a.add(b) == SI.range(100, 116, 8)
        c = SI.range(0, 4, 2)
        assert a.add(c).stride == 2

    def test_mul_shl(self):
        a = SI.range(0, 10, 1)
        assert a.mul_const(8) == SI.range(0, 80, 8)
        assert a.shl_const(3) == SI.range(0, 80, 8)
        assert a.mul_const(0) == SI.const(0)

    def test_mul_general(self):
        a = SI.range(2, 3, 1)
        b = SI.range(-1, 4, 1)
        prod = a.mul(b)
        assert prod.lo == -3 and prod.hi == 12

    def test_div_const(self):
        a = SI.range(0, 100, 1)
        q = a.div_const(10)
        assert q.lo <= 0 and q.hi >= 10

    def test_neg(self):
        assert SI.range(1, 5, 1).neg() == SI.range(-5, -1, 1)

    def test_join(self):
        a = SI.const(0)
        b = SI.const(8)
        assert a.join(b) == SI.range(0, 8, 8)
        assert a.join(a) == a

    def test_join_with_top(self):
        assert SI.const(1).join(SI_TOP).top

    def test_widen_explodes_unstable_bound(self):
        a = SI.range(0, 10, 1)
        b = SI.range(0, 20, 1)
        w = a.widen(b)
        assert w.hi >= (1 << 32)
        assert a.widen(SI.range(2, 5, 1)) == a.join(SI.range(2, 5, 1))

    def test_huge_range_is_top(self):
        assert SI.range(0, 1 << 50, 1).top

    def test_overlaps(self):
        a = SI.range(10, 20, 1)
        assert a.overlaps(15, 30)
        assert not a.overlaps(21, 30)
        assert SI_TOP.overlaps(0, 1)


class TestDomain:
    def test_join_vals(self):
        assert join_vals(BOTTOM, Num(SI.const(1))) == Num(SI.const(1))
        assert join_vals(Num(SI.const(1)), Num(SI.const(3))) == \
            Num(SI.range(1, 3, 2))
        assert join_vals(Num(SI.const(1)), TOP) is TOP
        assert join_vals(StackAddr(1, SI.const(0)),
                         StackAddr(2, SI.const(0))) is TOP

    def test_add_val(self):
        s = StackAddr(0x400000, SI.const(-8))
        r = add_val(s, Num(SI.const(-8)))
        assert isinstance(r, StackAddr) and r.si.lo == -16
        assert add_val(TOP, Num(SI.const(1))) is TOP
        assert add_val(BOTTOM, Num(SI.const(1))) is BOTTOM

    def test_resolve_access_exact(self):
        acc = resolve_access(Num(SI.const(0x1000)), 8)
        assert acc.alocs == frozenset({("g", 0x1000)})

    def test_resolve_access_strided(self):
        acc = resolve_access(Num(SI.range(0x1000, 0x1010, 8)), 8)
        assert ("g", 0x1008) in acc.alocs and len(acc.alocs) == 3

    def test_resolve_access_wide_becomes_range(self):
        acc = resolve_access(Num(SI.range(0x1000, 0x100000, 8)), 8)
        assert acc.ranges and acc.ranges[0][0] == "gr"

    def test_resolve_access_bottom_empty(self):
        assert resolve_access(BOTTOM).is_empty()

    def test_resolve_access_top_anywhere(self):
        assert resolve_access(TOP).top

    def test_resolve_stack_and_heap(self):
        acc = resolve_access(StackAddr(7, SI.const(-16)), 8)
        assert acc.alocs == frozenset({("s", 7, -16)})
        acc = resolve_access(HeapAddr(0x400100, SI.const(24)), 8)
        assert acc.alocs == frozenset({("h", 0x400100)})

    def test_unaligned_access_covers_two_words(self):
        acc = resolve_access(Num(SI.const(0x1004)), 8)
        assert acc.alocs == frozenset({("g", 0x1000), ("g", 0x1008)})


class TestCFG:
    def test_structure(self):
        binary = compile_source("""
        long helper(long x) { return x + 1; }
        long main() {
            long s = 0;
            for (long i = 0; i < 3; i = i + 1) { s = helper(s); }
            printf("%d\\n", s);
            return s;
        }
        """)
        cfg = CFG.build(binary)
        assert binary.symbols["helper"] in cfg.functions
        assert binary.symbols["main"] in cfg.functions
        assert binary.symbols["helper"] in cfg.calls.values()
        assert "printf" in cfg.extern_calls.values()
        # every non-terminal instruction has successors
        rets = {a for addrs in cfg.rets.values() for a in addrs}
        for ins in binary.text:
            if ins.mnemonic not in ("ret", "hlt", "ud2"):
                assert cfg.succ.get(ins.addr), hex(ins.addr)
        assert rets

    def test_jcc_two_successors(self):
        binary = compile_source(
            "long main() { if (1 < 2) { return 1; } return 0; }")
        cfg = CFG.build(binary)
        branchy = [a for a, s in cfg.succ.items() if len(s) == 2]
        assert branchy


class TestVSAClassification:
    def test_pure_int_program_no_sinks(self):
        report = analyze(compile_source("""
        long a[8];
        long main() {
            for (long i = 0; i < 8; i = i + 1) { a[i] = i * i; }
            long s = 0;
            for (long i = 0; i < 8; i = i + 1) { s = s + a[i]; }
            return s;
        }
        """))
        assert report.sinks == []
        assert report.fp_store_sites == 0

    def test_bits_intrinsic_is_sink(self):
        report = analyze(compile_source("""
        long main() {
            double x = 1.5;
            return __bits(x) & 255;
        }
        """))
        assert len(report.sinks) >= 1

    def test_separate_arrays_mostly_not_confused(self):
        """int loads of an int array next to a double array must not be
        patched wholesale.  (Branch-insensitive VSA lets the loop bound
        bleed one element past d[] into n[0], so at most the boundary
        load is conservatively patched — the paper's 'FPVM follows
        suit' policy; the dynamic check simply succeeds.)"""
        report = analyze(compile_source("""
        double d[8];
        long n[8];
        long main() {
            for (long i = 0; i < 8; i = i + 1) {
                d[i] = (double)i * 0.5;
                n[i] = i;
            }
            long s = 0;
            for (long i = 0; i < 8; i = i + 1) { s = s + n[i]; }
            return s;
        }
        """))
        assert len(report.sinks) <= 2
        assert report.int_load_sites > 10  # most loads were proven clean
        assert report.fp_store_sites > 0

    def test_bitwise_sites_found(self):
        report = analyze(compile_source("""
        long main() {
            double x = -1.5;
            double y = fabs(x);   // andpd
            double z = -y;        // xorpd
            return (long)z;
        }
        """))
        assert len(report.bitwise_sites) == 2

    def test_extern_demote_only_uninterposed(self):
        report = analyze(compile_source("""
        long main() {
            double x = sinh(0.5) + sin(0.5);
            printf("%f\\n", x);
            return 0;
        }
        """))
        names = [n for _, n in report.extern_demote_sites]
        assert "sinh" in names
        assert "sin" not in names      # interposed by the math wrapper
        assert "printf" not in names   # interposed by the output wrapper

    def test_movq_flagged(self):
        from conftest import asm_program
        from repro.isa.operands import Reg, Xmm

        def body(a):
            a.emit("movq", Reg("rax"), Xmm(0))

        report = analyze(asm_program(body))
        assert len(report.movq_sites) == 1

    def test_summary_string(self):
        report = analyze(compile_source("long main() { return 0; }"))
        assert "patches total" in report.summary()

    def test_report_counts(self):
        report = analyze(compile_source("""
        long main() {
            double s = 0.0;
            for (long i = 0; i < 4; i = i + 1) { s = s + 0.1; }
            printf("%f\\n", s);
            return 0;
        }
        """))
        assert report.instructions > 10
        assert report.vsa_iterations >= report.instructions
        assert report.functions >= 1
