"""Unit tests for FPSpy, the record-only tracer (paper §4.1's
predecessor tool, rebuilt on this substrate)."""

import pytest

from repro.errors import MachineError
from repro.ieee.softfloat import Flags
from repro.arith import VanillaArithmetic
from repro.compiler import compile_source
from repro.fpvm.fpspy import FPSpy, spy_on
from repro.machine.loader import load_binary
from repro.workloads import WORKLOADS
from repro.session import Session

SRC = """
long main() {
    double x = 1.0;
    for (long i = 0; i < 16; i = i + 1) { x = x / 3.0 + 1.0; }
    printf("%.17g\\n", x);
    return 0;
}
"""


class TestFPSpy:
    def test_results_unchanged(self):
        native = Session(lambda: compile_source(SRC), None).run()
        m = load_binary(compile_source(SRC))
        spy = FPSpy()
        spy.install(m)
        m.run()
        spy.uninstall()
        assert "".join(m.stdout) == native.stdout

    def test_counts_rounding_events(self):
        report = spy_on(lambda: compile_source(SRC))
        # div and add round until the iteration reaches the fixed point
        # of the *rounded* map (after ~10 steps every op is exact)
        assert report.by_kind["rounding"] == report.total_events
        assert 12 <= report.total_events <= 32
        assert report.fp_instructions >= report.total_events

    def test_site_histogram(self):
        report = spy_on(lambda: compile_source(SRC))
        sites = dict(report.hottest_sites())
        assert len(sites) == 2  # the divsd and the addsd in the loop
        assert report.by_mnemonic["divsd"] >= 8
        assert set(report.by_mnemonic) == {"divsd", "addsd"}

    def test_watch_filter(self):
        from repro.ieee.softfloat import Flags

        report = spy_on(lambda: compile_source(SRC), watch=Flags.ZE)
        assert report.total_events == 0  # nothing divides by zero

    def test_event_rate_lower_bounds_fpvm_traps(self):
        """FPSpy's event count lower-bounds FPVM's trap count: FPVM
        additionally traps on *exact* ops whose operands are NaN-boxed
        (a consumed box raises Invalid even when nothing rounds)."""
        spec = WORKLOADS["three_body"]
        report = spy_on(lambda: spec.build("test"))
        fpvm_run = Session(lambda: spec.build("test"), VanillaArithmetic(), patch=False).run()
        assert report.total_events <= fpvm_run.fp_traps
        assert report.total_events > 0.7 * fpvm_run.fp_traps

    def test_double_install_rejected(self):
        m = load_binary(compile_source(SRC))
        spy = FPSpy()
        spy.install(m)
        with pytest.raises(MachineError):
            spy.install(m)

    def test_uninstall_restores_masks(self):
        m = load_binary(compile_source(SRC))
        spy = FPSpy()
        spy.install(m)
        assert m.mxcsr.masks == 0
        spy.uninstall()
        assert m.mxcsr.masks == Flags.ALL
        assert m.fp_trap_handler is None

    def test_summary_string(self):
        report = spy_on(lambda: compile_source(SRC))
        s = report.summary()
        assert "would trap under FPVM" in s and "rounding=" in s
