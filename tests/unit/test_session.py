"""Tests for the Session facade, FPVMConfig, and arith.from_spec."""

import pytest

from repro.arith import (
    AlternativeArithmetic,
    ArithSpecError,
    VanillaArithmetic,
    from_spec,
)
from repro.fpvm.runtime import FPVM, FPVMConfig
from repro.session import LaneSpec, Session
from repro.trace import RingBufferSink
from repro.workloads import WORKLOADS


class TestFromSpec:
    @pytest.mark.parametrize("spec,cls_name", [
        ("vanilla", "VanillaArithmetic"),
        ("mpfr:80", "BigFloatArithmetic"),
        ("adaptive:32:256", "AdaptiveBigFloatArithmetic"),
        ("posit:16:1", "PositArithmetic"),
        ("interval", "IntervalArithmetic"),
    ])
    def test_string_specs(self, spec, cls_name):
        arith = from_spec(spec)
        assert type(arith).__name__ == cls_name
        assert isinstance(arith, AlternativeArithmetic)

    def test_tuple_specs(self):
        assert type(from_spec(("mpfr", 80))).__name__ == "BigFloatArithmetic"
        assert type(from_spec(("vanilla",))).__name__ == "VanillaArithmetic"
        assert type(from_spec(("posit", 16, 1))).__name__ == "PositArithmetic"

    def test_defaults_applied(self):
        assert from_spec("mpfr").precision == 200
        assert from_spec("mpfr:80").precision == 80

    def test_passthrough_instance(self):
        a = VanillaArithmetic()
        assert from_spec(a) is a

    @pytest.mark.parametrize("bad", [
        "quad", "mpfr:abc", "posit:32:2:9", "", (), 42, ("quad", 1),
    ])
    def test_bad_specs_raise_typed_error(self, bad):
        with pytest.raises(ArithSpecError):
            from_spec(bad)

    def test_cli_parse_arith_exits(self):
        from repro.__main__ import parse_arith

        assert type(parse_arith("mpfr:80")).__name__ == "BigFloatArithmetic"
        with pytest.raises(SystemExit):
            parse_arith("quad")


class TestFPVMConfig:
    def test_config_object(self):
        cfg = FPVMConfig(mode="trap-and-patch", gc_epoch_cycles=1000,
                         box_exact_results=False, printf_shadow_digits=30)
        fpvm = FPVM(VanillaArithmetic(), cfg)
        assert fpvm.mode == "trap-and-patch"
        assert fpvm.gc.epoch_cycles == 1000
        assert fpvm.emulator.box_exact_results is False
        assert fpvm.printf_shadow_digits == 30
        assert fpvm.config is cfg

    def test_defaults(self):
        fpvm = FPVM(VanillaArithmetic())
        assert fpvm.mode == "trap-and-emulate"
        assert fpvm.gc.epoch_cycles == 5_000_000
        assert fpvm.emulator.box_exact_results is True
        assert fpvm.printf_shadow_digits is None

    def test_legacy_kwargs_deprecated_but_work(self):
        with pytest.warns(DeprecationWarning):
            fpvm = FPVM(VanillaArithmetic(), mode="trap-and-patch",
                        gc_epoch_cycles=1234)
        assert fpvm.mode == "trap-and-patch"
        assert fpvm.gc.epoch_cycles == 1234

    def test_legacy_kwargs_override_config(self):
        cfg = FPVMConfig(gc_epoch_cycles=111)
        with pytest.warns(DeprecationWarning):
            fpvm = FPVM(VanillaArithmetic(), cfg, gc_epoch_cycles=222)
        assert fpvm.gc.epoch_cycles == 222
        assert cfg.gc_epoch_cycles == 111  # config is immutable

    def test_bad_mode_rejected(self):
        with pytest.raises(ValueError):
            FPVM(VanillaArithmetic(), FPVMConfig(mode="jit"))

    def test_trace_threaded_through_layers(self):
        ring = RingBufferSink()
        fpvm = FPVM(VanillaArithmetic(), FPVMConfig(trace=ring))
        assert fpvm.trace is ring
        assert fpvm.emulator.trace is ring
        assert fpvm.gc.trace is ring
        assert fpvm.bind_cache.trace is ring


class TestSession:
    def test_workload_name_and_spec_string(self):
        res = Session("lorenz", "mpfr:80", size="test").run()
        assert res.exit_code == 0
        assert res.fp_traps > 0
        assert res.fpvm is not None
        assert "x=" in res.stdout

    def test_native_session(self):
        res = Session("lorenz", None, size="test").run()
        assert res.exit_code == 0
        assert res.fpvm is None
        assert res.fp_traps == 0

    def test_builder_and_arith_instance(self):
        spec = WORKLOADS["lorenz"]
        s = Session(lambda: spec.build("test"), VanillaArithmetic())
        res = s.run()
        assert res.exit_code == 0
        assert s.result is res

    def test_vanilla_matches_native(self):
        nat = Session("lorenz", None, size="test").run()
        van = Session("lorenz", "vanilla", size="test").run()
        assert van.stdout == nat.stdout

    def test_context_manager_closes_sink(self):
        class Closeable(RingBufferSink):
            closed = False

            def close(self):
                self.closed = True

        sink = Closeable()
        with Session("lorenz", None, size="test", trace=sink) as s:
            s.run()
        assert sink.closed

    def test_platform_by_name(self):
        res = Session("lorenz", None, size="test", platform="7220").run()
        assert res.machine.cost.platform.name == "7220"

    def test_run_meta_header(self):
        ring = RingBufferSink()
        Session("lorenz", "mpfr:80", size="test", trace=ring,
                label="hdr").run()
        meta = ring.events[0]
        assert type(meta).__name__ == "RunMetaEvent"
        assert meta.label == "hdr"
        assert meta.arith == "mpfr80"
        assert meta.mode == "trap-and-emulate"
        assert len(meta.fp_sites) > 0


class TestRunBatch:
    """The batch-first surface: run() is the N=1 case of run_batch()."""

    def test_single_lane_matches_scalar(self):
        scalar = Session("lorenz", None, size="test").run()
        batch = Session("lorenz", None, size="test").run_batch([LaneSpec()])
        assert len(batch) == 1
        lane = batch[0]
        assert lane.stdout == scalar.stdout
        assert lane.exit_code == scalar.exit_code
        assert lane.instr_count == scalar.instr_count
        assert lane.fp_instr_count == scalar.fp_instr_count
        assert lane.cycles == scalar.cycles
        assert lane.final_regs == scalar.final_regs

    def test_dict_specs_and_result_surface(self):
        batch = Session("lorenz", None, size="test").run_batch(
            [{}, {"label": "b"}])
        assert batch.ok
        assert [lane.exit_code for lane in batch] == [0, 0]
        assert batch.dispatches > 0
        assert 0.0 <= batch.spill_rate <= 1.0

    def test_oracle_rejected(self):
        from repro.analysis.oracle import SoundnessOracle
        from repro.errors import MachineError

        s = Session("lorenz", None, size="test",
                    oracle=SoundnessOracle(fpvm=None))
        with pytest.raises(MachineError):
            s.run_batch([LaneSpec()])

    def test_batch_event_emitted(self):
        ring = RingBufferSink()
        Session("lorenz", None, size="test", trace=ring).run_batch(
            [LaneSpec(), LaneSpec()])
        kinds = [type(e).__name__ for e in ring.events]
        assert "BatchEvent" in kinds
        ev = next(e for e in ring.events
                  if type(e).__name__ == "BatchEvent")
        assert ev.lanes == 2
        assert ev.dispatches > 0
