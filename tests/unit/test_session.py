"""Tests for the Session facade, FPVMConfig, and arith.from_spec."""

import pytest

from repro.arith import (
    AlternativeArithmetic,
    ArithSpecError,
    VanillaArithmetic,
    from_spec,
)
from repro.fpvm.runtime import FPVM, FPVMConfig
from repro.harness.experiment import make_arith, run_native, run_under_fpvm
from repro.session import Session
from repro.trace import RingBufferSink
from repro.workloads import WORKLOADS


class TestFromSpec:
    @pytest.mark.parametrize("spec,cls_name", [
        ("vanilla", "VanillaArithmetic"),
        ("mpfr:80", "BigFloatArithmetic"),
        ("adaptive:32:256", "AdaptiveBigFloatArithmetic"),
        ("posit:16:1", "PositArithmetic"),
        ("interval", "IntervalArithmetic"),
    ])
    def test_string_specs(self, spec, cls_name):
        arith = from_spec(spec)
        assert type(arith).__name__ == cls_name
        assert isinstance(arith, AlternativeArithmetic)

    def test_tuple_specs(self):
        assert type(from_spec(("mpfr", 80))).__name__ == "BigFloatArithmetic"
        assert type(from_spec(("vanilla",))).__name__ == "VanillaArithmetic"
        assert type(from_spec(("posit", 16, 1))).__name__ == "PositArithmetic"

    def test_defaults_applied(self):
        assert from_spec("mpfr").precision == 200
        assert from_spec("mpfr:80").precision == 80

    def test_passthrough_instance(self):
        a = VanillaArithmetic()
        assert from_spec(a) is a

    @pytest.mark.parametrize("bad", [
        "quad", "mpfr:abc", "posit:32:2:9", "", (), 42, ("quad", 1),
    ])
    def test_bad_specs_raise_typed_error(self, bad):
        with pytest.raises(ArithSpecError):
            from_spec(bad)

    def test_make_arith_wrapper(self):
        assert type(make_arith(("mpfr", 80))).__name__ == "BigFloatArithmetic"
        with pytest.raises(ArithSpecError):
            make_arith(("quad",))

    def test_cli_parse_arith_exits(self):
        from repro.__main__ import parse_arith

        assert type(parse_arith("mpfr:80")).__name__ == "BigFloatArithmetic"
        with pytest.raises(SystemExit):
            parse_arith("quad")


class TestFPVMConfig:
    def test_config_object(self):
        cfg = FPVMConfig(mode="trap-and-patch", gc_epoch_cycles=1000,
                         box_exact_results=False, printf_shadow_digits=30)
        fpvm = FPVM(VanillaArithmetic(), cfg)
        assert fpvm.mode == "trap-and-patch"
        assert fpvm.gc.epoch_cycles == 1000
        assert fpvm.emulator.box_exact_results is False
        assert fpvm.printf_shadow_digits == 30
        assert fpvm.config is cfg

    def test_defaults(self):
        fpvm = FPVM(VanillaArithmetic())
        assert fpvm.mode == "trap-and-emulate"
        assert fpvm.gc.epoch_cycles == 5_000_000
        assert fpvm.emulator.box_exact_results is True
        assert fpvm.printf_shadow_digits is None

    def test_legacy_kwargs_deprecated_but_work(self):
        with pytest.warns(DeprecationWarning):
            fpvm = FPVM(VanillaArithmetic(), mode="trap-and-patch",
                        gc_epoch_cycles=1234)
        assert fpvm.mode == "trap-and-patch"
        assert fpvm.gc.epoch_cycles == 1234

    def test_legacy_kwargs_override_config(self):
        cfg = FPVMConfig(gc_epoch_cycles=111)
        with pytest.warns(DeprecationWarning):
            fpvm = FPVM(VanillaArithmetic(), cfg, gc_epoch_cycles=222)
        assert fpvm.gc.epoch_cycles == 222
        assert cfg.gc_epoch_cycles == 111  # config is immutable

    def test_bad_mode_rejected(self):
        with pytest.raises(ValueError):
            FPVM(VanillaArithmetic(), FPVMConfig(mode="jit"))

    def test_trace_threaded_through_layers(self):
        ring = RingBufferSink()
        fpvm = FPVM(VanillaArithmetic(), FPVMConfig(trace=ring))
        assert fpvm.trace is ring
        assert fpvm.emulator.trace is ring
        assert fpvm.gc.trace is ring
        assert fpvm.bind_cache.trace is ring


class TestSession:
    def test_workload_name_and_spec_string(self):
        res = Session("lorenz", "mpfr:80", size="test").run()
        assert res.exit_code == 0
        assert res.fp_traps > 0
        assert res.fpvm is not None
        assert "x=" in res.stdout

    def test_native_session(self):
        res = Session("lorenz", None, size="test").run()
        assert res.exit_code == 0
        assert res.fpvm is None
        assert res.fp_traps == 0

    def test_builder_and_arith_instance(self):
        spec = WORKLOADS["lorenz"]
        s = Session(lambda: spec.build("test"), VanillaArithmetic())
        res = s.run()
        assert res.exit_code == 0
        assert s.result is res

    def test_vanilla_matches_native(self):
        nat = Session("lorenz", None, size="test").run()
        van = Session("lorenz", "vanilla", size="test").run()
        assert van.stdout == nat.stdout

    def test_context_manager_closes_sink(self):
        class Closeable(RingBufferSink):
            closed = False

            def close(self):
                self.closed = True

        sink = Closeable()
        with Session("lorenz", None, size="test", trace=sink) as s:
            s.run()
        assert sink.closed

    def test_platform_by_name(self):
        res = Session("lorenz", None, size="test", platform="7220").run()
        assert res.machine.cost.platform.name == "7220"

    def test_run_meta_header(self):
        ring = RingBufferSink()
        Session("lorenz", "mpfr:80", size="test", trace=ring,
                label="hdr").run()
        meta = ring.events[0]
        assert type(meta).__name__ == "RunMetaEvent"
        assert meta.label == "hdr"
        assert meta.arith == "mpfr80"
        assert meta.mode == "trap-and-emulate"
        assert len(meta.fp_sites) > 0


class TestDeprecatedWrappers:
    """run_native / run_under_fpvm keep their exact old behaviour."""

    def test_run_native(self):
        spec = WORKLOADS["lorenz"]
        res = run_native(lambda: spec.build("test"))
        assert res.exit_code == 0 and res.fpvm is None

    def test_run_under_fpvm_kwargs(self):
        spec = WORKLOADS["lorenz"]
        res = run_under_fpvm(
            lambda: spec.build("test"), VanillaArithmetic(),
            mode="trap-and-patch", gc_epoch_cycles=2_000_000,
            box_exact_results=False, printf_shadow_digits=None,
            delivery_scenario="kernel", final_gc=False,
        )
        assert res.exit_code == 0
        assert res.fpvm.mode == "trap-and-patch"
        assert res.fpvm.gc.epoch_cycles == 2_000_000
        assert res.machine.delivery_scenario == "kernel"

    def test_wrapper_matches_session(self):
        spec = WORKLOADS["lorenz"]
        old = run_under_fpvm(lambda: spec.build("test"),
                             from_spec("mpfr:80"))
        new = Session("lorenz", "mpfr:80", size="test").run()
        assert old.stdout == new.stdout
        assert old.cycles == new.cycles
        assert old.fp_traps == new.fp_traps
