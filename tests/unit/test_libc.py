"""Unit tests for the simulated libc/libm bindings."""

import math

import pytest

from repro.errors import MachineError
from repro.ieee.bits import bits_to_f64, f64_to_bits
from repro.machine.libc import format_printf
from conftest import RAX, RBX, RDI, XMM0, asm_program, imm, lbl, mem
from repro.isa.operands import Reg
from repro.machine.loader import load_binary

RSI = Reg("rsi")
RDX = Reg("rdx")


def run(body, data=None, externs=()):
    m = load_binary(asm_program(body, data=data, externs=externs))
    m.run()
    return m


class TestFormatPrintf:
    def test_ints(self):
        assert format_printf("%d %d", [1, (-2) & ((1 << 64) - 1)], []) \
            == "1 -2"
        assert format_printf("%5d|%-5d|", [42, 42], []) == "   42|42   |"
        assert format_printf("%x", [255], []) == "ff"
        assert format_printf("%c", [65], []) == "A"

    def test_floats(self):
        assert format_printf("%f", [], [1.5]) == "1.500000"
        assert format_printf("%.2f", [], [math.pi]) == "3.14"
        assert format_printf("%.3e", [], [1234.5]) == "1.234e+03"
        assert format_printf("%g", [], [0.0001]) == "0.0001"

    def test_mixed_order(self):
        # int args consumed in order: 7 then "hi"
        s = format_printf("i=%d f=%f s=%s", [7, "hi"], [3.5])
        assert s == "i=7 f=3.500000 s=hi"

    def test_percent_literal(self):
        assert format_printf("100%%", [], []) == "100%"

    def test_prerendered_string_fp(self):
        assert format_printf("%f", [], ["3.333e-01"]) == "3.333e-01"


class TestOutput:
    def test_printf_through_machine(self):
        def body(a):
            a.emit("movabs", RDI, lbl("fmt"))
            a.emit("mov", RSI, imm(5))
            a.emit("movsd", XMM0, mem(disp=lbl("x")))
            a.emit("call", lbl("printf"))

        def data(a):
            a.asciiz("fmt", "n=%d x=%.3f\n")
            a.double("x", 2.5)

        m = run(body, data, externs=("printf",))
        assert "".join(m.stdout) == "n=5 x=2.500\n"

    def test_puts_putchar(self):
        def body(a):
            a.emit("movabs", RDI, lbl("s"))
            a.emit("call", lbl("puts"))
            a.emit("mov", RDI, imm(33))
            a.emit("call", lbl("putchar"))

        def data(a):
            a.asciiz("s", "hey")

        m = run(body, data, externs=("puts", "putchar"))
        assert "".join(m.stdout) == "hey\n!"

    def test_fwrite_raw_bytes(self):
        def body(a):
            a.emit("movabs", RDI, lbl("buf"))
            a.emit("mov", RSI, imm(1))
            a.emit("mov", RDX, imm(4))
            a.emit("call", lbl("fwrite"))

        def data(a):
            a.asciiz("buf", "abcd")

        m = run(body, data, externs=("fwrite",))
        assert "".join(m.stdout) == "abcd"


class TestHeap:
    def test_malloc_free_reuse(self):
        def body(a):
            a.emit("mov", RDI, imm(64))
            a.emit("call", lbl("malloc"))
            a.emit("mov", RBX, RAX)
            a.emit("mov", RDI, RAX)
            a.emit("call", lbl("free"))
            a.emit("mov", RDI, imm(64))
            a.emit("call", lbl("malloc"))

        m = run(body, externs=("malloc", "free"))
        # the freed block is reused
        assert m.regs.get_gpr("rax") == m.regs.get_gpr("rbx")

    def test_calloc_zeroes(self):
        def body(a):
            a.emit("mov", RDI, imm(4))
            a.emit("mov", RSI, imm(8))
            a.emit("call", lbl("calloc"))
            a.emit("mov", RBX, mem(RAX, disp=24))

        m = run(body, externs=("calloc",))
        assert m.regs.get_gpr("rbx") == 0

    def test_double_free_detected(self):
        def body(a):
            a.emit("mov", RDI, imm(16))
            a.emit("call", lbl("malloc"))
            a.emit("mov", RDI, RAX)
            a.emit("mov", RBX, RAX)
            a.emit("call", lbl("free"))
            a.emit("mov", RDI, RBX)
            a.emit("call", lbl("free"))

        with pytest.raises(MachineError):
            run(body, externs=("malloc", "free"))

    def test_memcpy_memset(self):
        def body(a):
            a.emit("movabs", RDI, lbl("dst"))
            a.emit("mov", RSI, imm(0xAB))
            a.emit("mov", RDX, imm(8))
            a.emit("call", lbl("memset"))
            a.emit("movabs", RDI, lbl("dst2"))
            a.emit("movabs", RSI, lbl("dst"))
            a.emit("mov", RDX, imm(8))
            a.emit("call", lbl("memcpy"))
            a.emit("movabs", RAX, lbl("dst2"))
            a.emit("mov", RBX, mem(RAX))

        def data(a):
            a.space("dst", 16)
            a.space("dst2", 16)

        m = run(body, data, externs=("memset", "memcpy"))
        assert m.regs.get_gpr("rbx") == 0xABABABAB_ABABABAB


class TestMisc:
    def test_rand_deterministic(self):
        def body(a):
            a.emit("mov", RDI, imm(1234))
            a.emit("call", lbl("srand"))
            a.emit("call", lbl("rand"))
            a.emit("mov", RBX, RAX)
            a.emit("call", lbl("rand"))

        m1 = run(body, externs=("srand", "rand"))
        m2 = run(body, externs=("srand", "rand"))
        assert m1.regs.get_gpr("rbx") == m2.regs.get_gpr("rbx")
        assert m1.regs.get_gpr("rax") == m2.regs.get_gpr("rax")
        assert m1.regs.get_gpr("rax") != m1.regs.get_gpr("rbx")

    def test_exit(self):
        def body(a):
            a.emit("mov", RDI, imm(7))
            a.emit("call", lbl("exit"))
            a.emit("ud2")  # never reached

        assert run(body, externs=("exit",)).exit_code == 7

    def test_strlen(self):
        def body(a):
            a.emit("movabs", RDI, lbl("s"))
            a.emit("call", lbl("strlen"))

        def data(a):
            a.asciiz("s", "hello world")

        assert run(body, data, externs=("strlen",)).regs.get_gpr("rax") == 11

    def test_clock_returns_cycles(self):
        def body(a):
            for _ in range(20):
                a.emit("mov", RBX, imm(1))
            a.emit("call", lbl("clock"))

        m = run(body, externs=("clock",))
        assert 0 < m.regs.get_gpr("rax") <= m.cost.cycles

    @pytest.mark.parametrize("fn,x,expect", [
        ("sin", 1.0, math.sin(1.0)), ("cos", 0.5, math.cos(0.5)),
        ("exp", 2.0, math.exp(2.0)), ("log", 10.0, math.log(10.0)),
        ("sqrt", 9.0, 3.0), ("fabs", -4.0, 4.0),
        ("floor", 2.7, 2.0), ("ceil", 2.1, 3.0), ("tanh", 0.5, math.tanh(0.5)),
    ])
    def test_libm_unary(self, fn, x, expect):
        def body(a):
            a.emit("movsd", XMM0, mem(disp=lbl("x")))
            a.emit("call", lbl(fn))

        def data(a):
            a.double("x", x)

        m = run(body, data, externs=(fn,))
        assert bits_to_f64(m.regs.xmm_lo(0)) == pytest.approx(expect,
                                                              rel=1e-15)

    @pytest.mark.parametrize("fn,x,y,expect", [
        ("pow", 2.0, 10.0, 1024.0), ("atan2", 1.0, 1.0, math.pi / 4),
        ("fmod", 7.5, 2.0, 1.5), ("fmin", 2.0, -1.0, -1.0),
    ])
    def test_libm_binary(self, fn, x, y, expect):
        def body(a):
            a.emit("movsd", XMM0, mem(disp=lbl("x")))
            a.emit("movsd", __import__("repro.isa.operands",
                                       fromlist=["Xmm"]).Xmm(1),
                   mem(disp=lbl("y")))
            a.emit("call", lbl(fn))

        def data(a):
            a.double("x", x)
            a.double("y", y)

        m = run(body, data, externs=(fn,))
        assert bits_to_f64(m.regs.xmm_lo(0)) == pytest.approx(expect,
                                                              rel=1e-15)

    def test_libm_domain_error_gives_nan(self):
        def body(a):
            a.emit("movsd", XMM0, mem(disp=lbl("x")))
            a.emit("call", lbl("asin"))

        def data(a):
            a.double("x", 2.0)  # out of [-1, 1]

        m = run(body, data, externs=("asin",))
        assert math.isnan(bits_to_f64(m.regs.xmm_lo(0)))

    def test_unresolved_import_rejected_at_load(self):
        from repro.asm import Assembler

        a = Assembler()
        a.extern("no_such_function")
        a.label("main")
        a.emit("ret")
        with pytest.raises(MachineError):
            load_binary(a.assemble())
