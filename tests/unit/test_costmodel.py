"""Unit tests for the platform cost model."""

import pytest

from repro.machine.costmodel import PLATFORMS, CostModel, P7220, R730XD, R815


class TestPlatforms:
    def test_three_paper_machines(self):
        assert set(PLATFORMS) == {"R815", "7220", "R730xd"}

    def test_fig14_kernel_ratio_in_band(self):
        """Kernel-level trap delivery is 7-30x cheaper (Fig. 14)."""
        for plat in (R815, P7220, R730XD):
            ratio = plat.user_trap_total / plat.kernel_trap_total
            assert 7 <= ratio <= 30, plat.name

    def test_scenarios_ordered(self):
        for plat in PLATFORMS.values():
            u = plat.scenario_delivery("user")
            k = plat.scenario_delivery("kernel")
            h = plat.scenario_delivery("hrt")
            p = plat.scenario_delivery("pipeline")
            assert u > k > h > p
            assert p <= 100  # §6.2: user->user delivery ~10-100 cycles

    def test_unknown_scenario(self):
        with pytest.raises(ValueError):
            R815.scenario_delivery("quantum")

    def test_fig9_total_in_band(self):
        """user delivery + FPVM stages lands in the 12k-24k band of
        Fig. 9 (before the arithmetic system's own cost)."""
        plat = R815
        total = (plat.user_trap_total + plat.decode_hit_cycles
                 + plat.bind_cycles + plat.emulate_base_cycles)
        assert 12_000 <= total + 2175 <= 24_000  # + an MPFR-200 divide


class TestCostModel:
    def test_charge_and_buckets(self):
        cm = CostModel(R815)
        cm.charge(100, "base")
        cm.charge(50, "emulate")
        cm.charge(25, "base")
        assert cm.cycles == 175
        assert cm.buckets == {"base": 125, "emulate": 50}

    def test_reset(self):
        cm = CostModel(R815)
        cm.charge(10)
        cm.reset()
        assert cm.cycles == 0 and cm.buckets == {}

    def test_fractional_cycles_supported(self):
        cm = CostModel(R815)
        cm.charge(0.25, "base")
        cm.charge(0.25, "base")
        assert cm.cycles == 0.5
