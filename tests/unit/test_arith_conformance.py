"""Conformance suite for the 37-function arithmetic interface (§4.3).

Every arithmetic system FPVM can host must satisfy these contracts —
the porting checklist implied by the paper's "extending FPVM to
support new alternative arithmetic is relatively simple".  The suite
runs identically over all shipped systems (and would over a user's).
"""

import math

import pytest

from repro.ieee.bits import bits_to_f64, f64_to_bits, is_nan64
from repro.arith import (
    AdaptiveBigFloatArithmetic,
    BigFloatArithmetic,
    IntervalArithmetic,
    Ordering,
    PositArithmetic,
    VanillaArithmetic,
)
from repro.arith.interface import (
    ARITH_OPS,
    COMPARISON_OPS,
    CONVERSION_OPS,
    AlternativeArithmetic,
)

SYSTEMS = [
    VanillaArithmetic(),
    BigFloatArithmetic(53),
    BigFloatArithmetic(200),
    AdaptiveBigFloatArithmetic(64, 512),
    PositArithmetic(32, 2),
    PositArithmetic(64, 2),
    IntervalArithmetic(),
]

IDS = [s.describe() for s in SYSTEMS]


@pytest.fixture(params=SYSTEMS, ids=IDS)
def arith(request):
    return request.param


def F(a, x: float):
    return a.from_f64_bits(f64_to_bits(x))


def V(a, v) -> float:
    return bits_to_f64(a.to_f64_bits(v))


class TestInterfaceShape:
    def test_37_functions_exist(self, arith):
        for name in ARITH_OPS + CONVERSION_OPS + COMPARISON_OPS:
            assert callable(getattr(arith, name)), name

    def test_is_subclass(self, arith):
        assert isinstance(arith, AlternativeArithmetic)

    def test_op_cycles_positive(self, arith):
        for op in ("add", "mul", "div", "sin", "compare"):
            assert arith.op_cycles(op) > 0


class TestArithmeticContracts:
    def test_small_integer_arith_exact(self, arith):
        # interval midpoints are within one outward-rounding ulp
        approx = (lambda v, x: v == pytest.approx(x, abs=1e-12)) \
            if isinstance(arith, IntervalArithmetic) else \
            (lambda v, x: v == x)
        two, three = F(arith, 2.0), F(arith, 3.0)
        assert approx(V(arith, arith.add(two, three)), 5.0)
        assert approx(V(arith, arith.sub(two, three)), -1.0)
        assert approx(V(arith, arith.mul(two, three)), 6.0)
        assert approx(V(arith, arith.div(F(arith, 6.0), three)), 2.0)
        assert approx(V(arith, arith.sqrt(F(arith, 9.0))), 3.0)
        assert approx(V(arith, arith.fma(two, three, F(arith, 1.0))), 7.0)

    def test_neg_abs(self, arith):
        x = F(arith, -2.5)
        assert V(arith, arith.neg(x)) == 2.5
        assert V(arith, arith.abs(x)) == 2.5
        assert arith.is_negative(x)
        assert not arith.is_negative(arith.abs(x))

    def test_min_max_x64_semantics(self, arith):
        a, b = F(arith, 1.0), F(arith, 2.0)
        assert V(arith, arith.min(a, b)) == 1.0
        assert V(arith, arith.max(a, b)) == 2.0
        nan = arith.from_f64_bits(f64_to_bits(math.nan))
        # NaN in either slot: forward src2 (MINSD)
        assert V(arith, arith.min(nan, b)) == 2.0

    def test_nan_totality(self, arith):
        """Every arithmetic function is total on NaN inputs."""
        nan = arith.from_f64_bits(f64_to_bits(math.nan))
        one = F(arith, 1.0)
        for op in ("add", "sub", "mul", "div", "atan2", "pow", "fmod"):
            assert arith.is_nan(getattr(arith, op)(nan, one)), op
        for op in ("sqrt", "sin", "cos", "tan", "exp", "atan"):
            assert arith.is_nan(getattr(arith, op)(nan)), op

    def test_domain_errors_give_nan(self, arith):
        neg = F(arith, -4.0)
        assert arith.is_nan(arith.sqrt(neg))
        assert arith.is_nan(arith.log(neg))
        assert arith.is_nan(arith.asin(F(arith, 3.0)))

    @pytest.mark.parametrize("fn,ref,x", [
        ("sin", math.sin, 0.7), ("cos", math.cos, 0.7),
        ("tan", math.tan, 0.4), ("exp", math.exp, 1.5),
        ("log", math.log, 4.2), ("log2", math.log2, 4.2),
        ("log10", math.log10, 4.2), ("atan", math.atan, 2.1),
        ("asin", math.asin, 0.6), ("acos", math.acos, 0.6),
    ])
    def test_transcendental_accuracy(self, arith, fn, ref, x):
        got = V(arith, getattr(arith, fn)(F(arith, x)))
        # posit32 carries ~28 significand bits; everything else ≥ 53
        rel = 1e-6 if "posit32" in arith.describe() else 1e-11
        assert got == pytest.approx(ref(x), rel=rel)

    def test_binary_transcendentals(self, arith):
        rel = 1e-6 if "posit32" in arith.describe() else 1e-11
        assert V(arith, arith.pow(F(arith, 2.0), F(arith, 8.0))) == \
            pytest.approx(256.0, rel=rel)
        assert V(arith, arith.atan2(F(arith, 1.0), F(arith, 1.0))) == \
            pytest.approx(math.pi / 4, rel=rel)
        assert V(arith, arith.fmod(F(arith, 7.5), F(arith, 2.0))) == \
            pytest.approx(1.5, rel=rel)


class TestConversionContracts:
    def test_f64_roundtrip_simple(self, arith):
        for x in (0.0, 1.0, -2.5, 1024.0, 0.125):
            assert V(arith, F(arith, x)) == x

    def test_int_conversions(self, arith):
        assert V(arith, arith.from_i64(42)) == 42.0
        assert V(arith, arith.from_i64((-9) & ((1 << 64) - 1))) == -9.0
        assert V(arith, arith.from_i32(7)) == 7.0
        v = F(arith, -2.7)
        assert arith.to_i64(v, True) == (-2) & ((1 << 64) - 1)
        assert arith.to_i32(F(arith, 2.5), False) == 2  # nearest-even

    def test_int_indefinite_on_nan(self, arith):
        nan = arith.from_f64_bits(f64_to_bits(math.nan))
        assert arith.to_i64(nan, True) == 1 << 63
        assert arith.to_i32(nan, True) == 1 << 31

    def test_f32_roundtrip(self, arith):
        from repro.ieee.bits import f32_to_bits

        w = arith.from_f32_bits(f32_to_bits(1.5))
        assert arith.to_f32_bits(w) == f32_to_bits(1.5)

    @pytest.mark.parametrize("mode,x,expect", [
        (0, 2.5, 2.0), (1, -2.1, -3.0), (2, 2.1, 3.0), (3, -2.9, -2.0),
    ])
    def test_round_to_integral(self, arith, mode, x, expect):
        assert V(arith, arith.round_to_integral(F(arith, x), mode)) == \
            expect

    def test_decimal_str(self, arith):
        s = arith.to_decimal_str(F(arith, 0.5), 6)
        assert s.replace("e-01", "").replace("0", "").strip(".") in \
            ("5", "5e-1", ".5") or "5" in s


class TestComparisonContracts:
    def test_orderings(self, arith):
        a, b = F(arith, 1.0), F(arith, 2.0)
        assert arith.compare(a, b) is Ordering.LT
        assert arith.compare(b, a) is Ordering.GT
        assert arith.compare(a, a) is Ordering.EQ
        nan = arith.from_f64_bits(f64_to_bits(math.nan))
        assert arith.compare(nan, a) is Ordering.UNORDERED

    def test_predicates(self, arith):
        assert arith.is_zero(F(arith, 0.0))
        assert not arith.is_zero(F(arith, 1.0))
        assert arith.is_negative(F(arith, -1.0))
        assert arith.is_nan(arith.from_f64_bits(f64_to_bits(math.nan)))
