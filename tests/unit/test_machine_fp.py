"""Unit tests for FP instruction semantics, trap precision, and the
non-faulting "correctness hole" ops on the simulated CPU."""

import math

import pytest

from repro.errors import UnhandledTrap
from repro.ieee.bits import (
    F64_EXP_MASK,
    F64_SIGN_BIT,
    bits_to_f64,
    f32_to_bits,
    f64_to_bits,
)
from repro.ieee.softfloat import Flags
from repro.isa.operands import Imm, Reg, Xmm
from repro.machine.loader import load_binary
from repro.machine.traps import TrapKind
from conftest import RAX, RBX, XMM0, XMM1, XMM2, asm_program, imm, lbl, mem, run_program


def fload(a, x_reg, name):
    """Emit a load of a double constant into an xmm register."""
    a.emit("movsd", x_reg, mem(disp=lbl(name)))


def fp_data(pairs):
    def data(a):
        for name, val in pairs:
            a.double(name, val)
    return data


class TestScalarArith:
    def test_addsd(self):
        def body(a):
            fload(a, XMM0, "x")
            fload(a, XMM1, "y")
            a.emit("addsd", XMM0, XMM1)

        m = run_program(body, data=fp_data([("x", 2.0), ("y", 3.0)]))
        assert bits_to_f64(m.regs.xmm_lo(0)) == 5.0

    def test_addsd_mem_operand(self):
        def body(a):
            fload(a, XMM0, "x")
            a.emit("addsd", XMM0, mem(disp=lbl("y")))

        m = run_program(body, data=fp_data([("x", 1.5), ("y", 0.25)]))
        assert bits_to_f64(m.regs.xmm_lo(0)) == 1.75

    def test_sub_mul_div_sqrt(self):
        def body(a):
            fload(a, XMM0, "x")
            a.emit("subsd", XMM0, mem(disp=lbl("y")))   # 6 - 2 = 4
            a.emit("mulsd", XMM0, mem(disp=lbl("y")))   # 8
            a.emit("divsd", XMM0, mem(disp=lbl("y")))   # 4
            a.emit("sqrtsd", XMM1, XMM0)                # 2

        m = run_program(body, data=fp_data([("x", 6.0), ("y", 2.0)]))
        assert bits_to_f64(m.regs.xmm_lo(1)) == 2.0

    def test_minsd_maxsd(self):
        def body(a):
            fload(a, XMM0, "x")
            fload(a, XMM1, "y")
            a.emit("movapd", XMM2, XMM0)
            a.emit("minsd", XMM2, XMM1)
            a.emit("maxsd", XMM0, XMM1)

        m = run_program(body, data=fp_data([("x", 3.0), ("y", -1.0)]))
        assert bits_to_f64(m.regs.xmm_lo(2)) == -1.0
        assert bits_to_f64(m.regs.xmm_lo(0)) == 3.0

    def test_fmaddsd(self):
        def body(a):
            fload(a, XMM0, "acc")
            fload(a, XMM1, "x")
            fload(a, XMM2, "y")
            a.emit("fmaddsd", XMM0, XMM1, XMM2)  # acc += x*y

        m = run_program(body, data=fp_data([("acc", 1.0), ("x", 2.0),
                                            ("y", 3.0)]))
        assert bits_to_f64(m.regs.xmm_lo(0)) == 7.0

    def test_packed_addpd(self):
        def body(a):
            a.emit("movapd", XMM0, mem(disp=lbl("v1"), size=16))
            a.emit("addpd", XMM0, mem(disp=lbl("v2"), size=16))

        def data(a):
            a.double("v1", [1.0, 2.0])
            a.double("v2", [10.0, 20.0])

        m = run_program(body, data=data)
        assert bits_to_f64(m.regs.xmm_lo(0)) == 11.0
        assert bits_to_f64(m.regs.xmm_hi(0)) == 22.0

    def test_sticky_flags_accumulate_when_masked(self):
        def body(a):
            fload(a, XMM0, "one")
            a.emit("divsd", XMM0, mem(disp=lbl("three")))

        m = run_program(body, data=fp_data([("one", 1.0), ("three", 3.0)]))
        assert m.mxcsr.flags & Flags.PE  # sticky, no trap (masked)
        assert m.fp_trap_count == 0


class TestMoves:
    def test_movsd_load_zeroes_high(self):
        def body(a):
            a.emit("movapd", XMM0, mem(disp=lbl("v"), size=16))
            a.emit("movsd", XMM0, mem(disp=lbl("x")))

        def data(a):
            a.double("v", [1.0, 2.0])
            a.double("x", 9.0)

        m = run_program(body, data=data)
        assert bits_to_f64(m.regs.xmm_lo(0)) == 9.0
        assert m.regs.xmm_hi(0) == 0  # x64: memory form zeroes bits 64:127

    def test_movsd_reg_merges(self):
        def body(a):
            a.emit("movapd", XMM0, mem(disp=lbl("v"), size=16))
            fload(a, XMM1, "x")
            a.emit("movsd", XMM0, XMM1)

        def data(a):
            a.double("v", [1.0, 2.0])
            a.double("x", 9.0)

        m = run_program(body, data=data)
        assert bits_to_f64(m.regs.xmm_lo(0)) == 9.0
        assert bits_to_f64(m.regs.xmm_hi(0)) == 2.0  # preserved

    def test_movq_gpr_xmm_bit_transfer(self):
        def body(a):
            a.emit("movabs", RAX, imm(f64_to_bits(3.5)))
            a.emit("movq", XMM0, RAX)
            a.emit("movq", RBX, XMM0)

        m = run_program(body)
        assert bits_to_f64(m.regs.xmm_lo(0)) == 3.5
        assert m.regs.get_gpr("rbx") == f64_to_bits(3.5)

    def test_movhpd(self):
        def body(a):
            a.emit("movsd", XMM0, mem(disp=lbl("x")))
            a.emit("movhpd", XMM0, mem(disp=lbl("y")))

        m = run_program(body, data=fp_data([("x", 1.0), ("y", 2.0)]))
        assert bits_to_f64(m.regs.xmm_hi(0)) == 2.0

    def test_movss_load(self):
        def body(a):
            a.emit("movss", XMM0, mem(disp=lbl("s"), size=4))

        def data(a):
            a.quad("s", f32_to_bits(1.5))

        m = run_program(body, data=data)
        assert m.regs.xmm_lo(0) & 0xFFFF_FFFF == f32_to_bits(1.5)


class TestBitwiseHole:
    """xorpd/andpd never fault — even on NaN payloads (§4.2)."""

    def test_xorpd_sign_flip(self):
        def body(a):
            fload(a, XMM0, "x")
            a.emit("xorpd", XMM0, mem(disp=lbl("mask"), size=16))

        def data(a):
            a.double("x", 7.5)
            a.quad("mask", [F64_SIGN_BIT, F64_SIGN_BIT])

        m = run_program(body, data=data)
        assert bits_to_f64(m.regs.xmm_lo(0)) == -7.5
        assert m.fp_trap_count == 0

    def test_andpd_abs(self):
        def body(a):
            fload(a, XMM0, "x")
            a.emit("andpd", XMM0, mem(disp=lbl("mask"), size=16))

        def data(a):
            a.double("x", -2.25)
            a.quad("mask", [~F64_SIGN_BIT & ((1 << 64) - 1)] * 2)

        m = run_program(body, data=data)
        assert bits_to_f64(m.regs.xmm_lo(0)) == 2.25

    def test_xorpd_on_snan_does_not_fault(self):
        snan = F64_EXP_MASK | 0x42  # a NaN-box-shaped value
        def body(a):
            a.emit("movabs", RAX, imm(snan))
            a.emit("movq", XMM0, RAX)
            a.emit("xorpd", XMM0, mem(disp=lbl("mask"), size=16))
            a.emit("movq", RBX, XMM0)

        def data(a):
            a.quad("mask", [F64_SIGN_BIT, F64_SIGN_BIT])

        m = run_program(body, data=data)
        # the "NaN" flowed through a bit operation silently
        assert m.regs.get_gpr("rbx") == snan | F64_SIGN_BIT
        assert m.fp_trap_count == 0

    def test_orpd_andnpd(self):
        def body(a):
            a.emit("movabs", RAX, imm(0xF0))
            a.emit("movq", XMM0, RAX)
            a.emit("movabs", RAX, imm(0x0F))
            a.emit("movq", XMM1, RAX)
            a.emit("orpd", XMM0, XMM1)       # 0xFF
            a.emit("movabs", RAX, imm(0x3C))
            a.emit("movq", XMM2, RAX)
            a.emit("andnpd", XMM2, XMM0)     # ~0x3C & 0xFF = 0xC3

        m = run_program(body)
        assert m.regs.xmm_lo(2) == 0xC3


class TestCompareAndCvt:
    def test_ucomisd_sets_rflags(self):
        def body(a):
            fload(a, XMM0, "x")
            a.emit("ucomisd", XMM0, mem(disp=lbl("y")))

        m = run_program(body, data=fp_data([("x", 1.0), ("y", 2.0)]))
        assert (m.regs.zf, m.regs.pf, m.regs.cf) == (0, 0, 1)

    def test_cmpsd_mask(self):
        def body(a):
            fload(a, XMM0, "x")
            a.emit("cmpsd", XMM0, mem(disp=lbl("y")), Imm(1))  # LT

        m = run_program(body, data=fp_data([("x", 1.0), ("y", 2.0)]))
        assert m.regs.xmm_lo(0) == (1 << 64) - 1

    def test_cvtsi2sd_and_back(self):
        def body(a):
            a.emit("mov", RAX, imm(41))
            a.emit("cvtsi2sd", XMM0, RAX)
            a.emit("addsd", XMM0, mem(disp=lbl("one")))
            a.emit("cvttsd2si", RBX, XMM0)

        m = run_program(body, data=fp_data([("one", 1.0)]))
        assert m.regs.get_gpr("rbx") == 42

    def test_cvtsd2si_rounds(self):
        def body(a):
            fload(a, XMM0, "x")
            a.emit("cvtsd2si", RAX, XMM0)
            a.emit("cvttsd2si", RBX, XMM0)

        m = run_program(body, data=fp_data([("x", 2.5)]))
        assert m.regs.get_gpr("rax") == 2  # nearest-even
        assert m.regs.get_gpr("rbx") == 2  # trunc

    def test_cvtsd2ss_cvtss2sd(self):
        def body(a):
            fload(a, XMM0, "x")
            a.emit("cvtsd2ss", XMM1, XMM0)
            a.emit("cvtss2sd", XMM2, XMM1)

        m = run_program(body, data=fp_data([("x", 1.5)]))
        assert bits_to_f64(m.regs.xmm_lo(2)) == 1.5

    def test_roundsd(self):
        def body(a):
            fload(a, XMM0, "x")
            a.emit("roundsd", XMM1, XMM0, Imm(1))  # floor

        m = run_program(body, data=fp_data([("x", 2.7)]))
        assert bits_to_f64(m.regs.xmm_lo(1)) == 2.0

    def test_scalar32_arith(self):
        def body(a):
            a.emit("movss", XMM0, mem(disp=lbl("a"), size=4))
            a.emit("addss", XMM0, mem(disp=lbl("b"), size=4))

        def data(a):
            a.quad("a", f32_to_bits(1.5))
            a.quad("b", f32_to_bits(2.25))

        m = run_program(body, data=data)
        assert m.regs.xmm_lo(0) & 0xFFFF_FFFF == f32_to_bits(3.75)


class TestTrapDelivery:
    def _build(self):
        def body(a):
            a.emit("movsd", XMM0, mem(disp=lbl("one")))
            a.emit("divsd", XMM0, mem(disp=lbl("three")))
            a.emit("mov", RAX, imm(0))

        return asm_program(body, data=fp_data([("one", 1.0),
                                               ("three", 3.0)]))

    def test_unmasked_without_handler_raises(self):
        m = load_binary(self._build())
        m.mxcsr.unmask_all()
        with pytest.raises(UnhandledTrap):
            m.run()

    def test_trap_is_precise_no_commit(self):
        """The faulting instruction must not write its destination."""
        m = load_binary(self._build())
        m.mxcsr.unmask_all()
        seen = {}

        def handler(machine, frame):
            seen["kind"] = frame.kind
            seen["mnemonic"] = frame.instruction.mnemonic
            seen["dest_before_commit"] = bits_to_f64(machine.regs.xmm_lo(0))
            seen["flags"] = frame.fp_flags
            # emulate by hand: write a sentinel, skip the instruction
            machine.regs.set_xmm_lo(0, f64_to_bits(123.0))
            machine.regs.rip = frame.instruction.next_addr

        m.fp_trap_handler = handler
        m.run()
        assert seen["kind"] is TrapKind.FP_EXCEPTION
        assert seen["mnemonic"] == "divsd"
        assert seen["dest_before_commit"] == 1.0  # unmodified
        assert seen["flags"] & Flags.PE
        assert bits_to_f64(m.regs.xmm_lo(0)) == 123.0
        assert m.fp_trap_count == 1

    def test_delivery_charges_platform_cycles(self):
        m = load_binary(self._build())
        m.mxcsr.unmask_all()
        m.fp_trap_handler = lambda machine, fr: setattr(
            machine.regs, "rip", fr.instruction.next_addr)
        m.run()
        plat = m.cost.platform
        assert m.cost.buckets["hw_delivery"] == plat.hw_trap_cycles
        assert m.cost.buckets["kernel_delivery"] == (
            plat.user_trap_total - plat.hw_trap_cycles)

    def test_scenario_kernel_cheaper(self):
        costs = {}
        for scenario in ("user", "kernel", "hrt", "pipeline"):
            m = load_binary(self._build())
            m.delivery_scenario = scenario
            m.mxcsr.unmask_all()
            m.fp_trap_handler = lambda machine, fr: setattr(
                machine.regs, "rip", fr.instruction.next_addr)
            m.run()
            costs[scenario] = (m.cost.buckets.get("hw_delivery", 0)
                               + m.cost.buckets.get("kernel_delivery", 0))
        assert costs["user"] > costs["kernel"] > costs["hrt"] > \
            costs["pipeline"]
