"""Fault-injection subsystem: plans, injectors, typed errors, crash
reports, and the graceful-degradation ladder."""

import json
import pickle

import pytest

from repro.arith import VanillaArithmetic
from repro.compiler import compile_source
from repro.errors import (MachineError, MemoryFault, NanBoxError,
                          ReproError, UnknownSegment, WatchdogExpired)
from repro.faults import (STAGES, FaultInjector, FaultPlan, FaultPlanError,
                          FaultRule, InjectedFault, build_crash_report,
                          write_crash_report)
from repro.fpvm.nanbox import NaNBoxCodec
from repro.fpvm.runtime import FPVMConfig
from repro.fpvm.shadow import ShadowStore
from repro.machine.memory import Memory
from repro.session import Session
from repro.trace.events import DegradeEvent, event_from_dict

TRAPPY_SRC = """
long main() {
    double x = 1.0;
    for (long i = 0; i < 80; i = i + 1) { x = x / 3.0 + 1.0; }
    printf("%.17g\\n", x);
    return 0;
}
"""


def _run(plan=None, storm_threshold=8):
    cfg = FPVMConfig(faults=plan, storm_threshold=storm_threshold)
    s = Session(lambda: compile_source(TRAPPY_SRC), VanillaArithmetic(),
                config=cfg)
    return s, s.run()


# --------------------------------------------------------------------------- #
# plans and rules                                                              #
# --------------------------------------------------------------------------- #

class TestFaultPlan:
    def test_every_stage_is_valid(self):
        for stage in STAGES:
            FaultRule(stage, probability=0.5).validate()

    @pytest.mark.parametrize("rule", [
        FaultRule("frobnicate", probability=0.5),
        FaultRule("decode", probability=1.5),
        FaultRule("decode", probability=-0.1),
        FaultRule("decode"),                      # can never fire
        FaultRule("decode", nth=0),
        FaultRule("decode", probability=0.5, max_fires=0),
    ])
    def test_invalid_rules_rejected(self, rule):
        with pytest.raises(FaultPlanError):
            rule.validate()

    def test_plan_validates_rules_eagerly(self):
        with pytest.raises(FaultPlanError):
            FaultPlan(seed=1, rules=(FaultRule("nope", nth=1),))

    def test_plan_is_picklable_and_hashable(self):
        plan = FaultPlan(seed=3, rules=(FaultRule("emulate", nth=2),))
        assert pickle.loads(pickle.dumps(plan)) == plan
        assert hash(plan) == hash(pickle.loads(pickle.dumps(plan)))

    def test_stages_in_pipeline_order(self):
        plan = FaultPlan(rules=(FaultRule("gc_sweep", nth=1),
                                FaultRule("decode", nth=1)))
        assert plan.stages == ("decode", "gc_sweep")

    def test_describe_mentions_triggers(self):
        plan = FaultPlan(seed=9, rules=(
            FaultRule("bind", probability=0.25, nth=4),))
        text = plan.describe()
        assert "bind" in text and "nth=4" in text and "p=0.25" in text
        assert "zero-fault" in FaultPlan(seed=9).describe()


class TestFaultInjector:
    def test_nth_fires_exactly_once(self):
        inj = FaultInjector(FaultPlan(rules=(FaultRule("decode", nth=3),)))
        hits = [inj.fires("decode") for _ in range(10)]
        assert hits == [False, False, True] + [False] * 7

    def test_probability_stream_is_deterministic(self):
        plan = FaultPlan(seed=5, rules=(
            FaultRule("emulate", probability=0.3, max_fires=None),))
        a = FaultInjector(plan)
        b = FaultInjector(plan)
        seq_a = [a.fires("emulate") for _ in range(200)]
        seq_b = [b.fires("emulate") for _ in range(200)]
        assert seq_a == seq_b
        assert any(seq_a) and not all(seq_a)

    def test_stage_streams_are_independent(self):
        """Probing one stage never perturbs another stage's stream."""
        plan = FaultPlan(seed=5, rules=(
            FaultRule("emulate", probability=0.3, max_fires=None),
            FaultRule("bind", probability=0.3, max_fires=None),))
        a = FaultInjector(plan)
        b = FaultInjector(FaultPlan(seed=5, rules=(
            FaultRule("emulate", probability=0.3, max_fires=None),)))
        seq_a = []
        for i in range(100):
            a.fires("bind")
            seq_a.append(a.fires("emulate"))
        assert seq_a == [b.fires("emulate") for _ in range(100)]

    def test_max_fires_caps_rule(self):
        inj = FaultInjector(FaultPlan(rules=(
            FaultRule("gc_sweep", probability=1.0, max_fires=2),)))
        assert [inj.fires("gc_sweep") for _ in range(5)] == [
            True, True, False, False, False]

    def test_unplanned_stage_is_free(self):
        inj = FaultInjector(FaultPlan(seed=1))
        assert not inj.fires("decode")
        assert inj.total_fired == 0 and inj.fired == {}

    def test_fire_raises_injected_fault(self):
        inj = FaultInjector(FaultPlan(rules=(FaultRule("bind", nth=1),)))
        with pytest.raises(InjectedFault) as ei:
            inj.fire("bind", "mulsd")
        assert ei.value.stage == "bind" and ei.value.occurrence == 1
        assert isinstance(ei.value, ReproError)

    def test_summary_is_picklable(self):
        inj = FaultInjector(FaultPlan(rules=(FaultRule("decode", nth=1),)))
        inj.fires("decode")
        summary = pickle.loads(pickle.dumps(inj.summary()))
        assert summary["fired"] == {"decode": 1}
        assert summary["occurrences"] == {"decode": 1}


# --------------------------------------------------------------------------- #
# typed error satellites                                                       #
# --------------------------------------------------------------------------- #

class TestTypedErrors:
    def test_map_rejects_non_positive_size_as_memory_fault(self):
        mem = Memory()
        with pytest.raises(MemoryFault):
            mem.map("bad", 0x1000, 0)
        with pytest.raises(MachineError):
            mem.map("bad", 0x1000, -8)

    def test_unknown_segment_is_machine_and_key_error(self):
        mem = Memory()
        with pytest.raises(UnknownSegment) as ei:
            mem.segment_named("nope")
        assert isinstance(ei.value, MachineError)
        assert isinstance(ei.value, KeyError)
        assert "nope" in str(ei.value) and ei.value.name == "nope"

    def test_nanbox_encode_out_of_range(self):
        codec = NaNBoxCodec()
        with pytest.raises(NanBoxError) as ei:
            codec.encode(1 << 52)
        assert isinstance(ei.value, ValueError)
        assert isinstance(ei.value, ReproError)

    def test_decode_checked_rejects_non_box(self):
        codec = NaNBoxCodec()
        bits = codec.encode(41)
        assert codec.decode_checked(bits) == 41
        with pytest.raises(NanBoxError):
            codec.decode_checked(0x3FF0_0000_0000_0000)  # plain 1.0

    def test_shadow_fetch_dangling_handle(self):
        store = ShadowStore()
        h = store.alloc(1.5)
        assert store.fetch(h) == 1.5
        store.clear_marks()
        store.sweep()
        assert store.get(h) is None  # tolerant spelling
        with pytest.raises(NanBoxError):
            store.fetch(h)  # checked spelling


# --------------------------------------------------------------------------- #
# the degradation ladder                                                       #
# --------------------------------------------------------------------------- #

class TestDegradation:
    def test_injected_faults_degrade_and_preserve_output(self):
        _, clean = _run()
        s, res = _run(FaultPlan(seed=2, rules=(
            FaultRule("emulate", probability=0.3, max_fires=None),)),
            storm_threshold=0)
        assert res.exit_code == 0
        assert res.stdout == clean.stdout  # vanilla-correct degradation
        assert s.fpvm.stats.degradations > 0
        assert s.fpvm.injector.total_fired == s.fpvm.stats.degradations

    def test_storm_detector_demotes_hot_site(self):
        s, res = _run(FaultPlan(seed=2, rules=(
            FaultRule("emulate", probability=1.0, max_fires=None),)),
            storm_threshold=4)
        st = s.fpvm.stats
        assert st.sites_short_circuited >= 1
        assert st.short_circuit_execs > 0
        # demoted sites stop degrading: far fewer degradations than traps
        assert st.degradations < st.fp_traps

    def test_zero_threshold_disables_storm_detector(self):
        s, _ = _run(FaultPlan(seed=2, rules=(
            FaultRule("emulate", probability=1.0, max_fires=None),)),
            storm_threshold=0)
        assert s.fpvm.stats.sites_short_circuited == 0

    def test_degrade_events_traced(self):
        from repro.trace.sinks import RingBufferSink

        ring = RingBufferSink(capacity=4096)
        cfg = FPVMConfig(
            faults=FaultPlan(seed=2, rules=(
                FaultRule("emulate", nth=1),)),
            trace=ring)
        s = Session(lambda: compile_source(TRAPPY_SRC),
                    VanillaArithmetic(), config=cfg)
        s.run()
        degrades = [e for e in ring.events if e.kind == "degrade"]
        assert len(degrades) == 1
        ev = degrades[0]
        assert ev.stage == "emulate" and ev.injected
        assert event_from_dict(ev.to_dict()) == ev

    def test_gc_sweep_skip_keeps_shadows_alive(self):
        s, res = _run(FaultPlan(seed=0, rules=(
            FaultRule("gc_sweep", probability=1.0, max_fires=None),)))
        assert res.exit_code == 0
        assert s.fpvm.gc.sweeps_skipped == len(s.fpvm.gc.passes)
        assert all(p.freed == 0 for p in s.fpvm.gc.passes)

    def test_watchdog_expired_is_typed(self):
        s = Session(lambda: compile_source(TRAPPY_SRC),
                    VanillaArithmetic())
        with pytest.raises(WatchdogExpired) as ei:
            s.run(max_instructions=50)
        assert ei.value.kind == "instructions"
        assert isinstance(ei.value, MachineError)
        # crash containment captured the structured report
        kinds = [r["kind"] for r in s.crash_records]
        assert kinds[0] == "crash" and "registers" in kinds

    def test_cycle_watchdog(self):
        s = Session(lambda: compile_source(TRAPPY_SRC),
                    VanillaArithmetic())
        with pytest.raises(WatchdogExpired) as ei:
            s.run(max_cycles=10_000)
        assert ei.value.kind == "cycles"


# --------------------------------------------------------------------------- #
# crash reports                                                                #
# --------------------------------------------------------------------------- #

class TestCrashReport:
    def _crash(self):
        s = Session(lambda: compile_source(TRAPPY_SRC),
                    VanillaArithmetic(), label="unit-crash")
        try:
            s.run(max_instructions=50)
        except WatchdogExpired as exc:
            return s, exc
        raise AssertionError("expected WatchdogExpired")

    def test_records_are_json_safe_and_kind_tagged(self, tmp_path):
        s, exc = self._crash()
        records = build_crash_report(exc, s.machine, s.fpvm,
                                     label="unit-crash")
        kinds = [r["kind"] for r in records]
        assert kinds == ["crash", "disassembly", "registers",
                         "trap_context"]
        head = records[0]
        assert head["error"] == "WatchdogExpired"
        assert head["rip"] == s.machine.regs.rip
        window = records[1]["window"]
        assert any(is_rip for _, _, is_rip in window)
        path = tmp_path / "crash.ndjson"
        write_crash_report(path, records)
        lines = path.read_text().splitlines()
        assert [json.loads(l)["kind"] for l in lines] == kinds

    def test_report_without_machine_still_valid(self):
        records = build_crash_report(ValueError("boom"), label="bare")
        assert records == [{"kind": "crash", "error": "ValueError",
                            "message": "boom", "label": "bare"}]
