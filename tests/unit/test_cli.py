"""Unit tests for the python -m repro command line interface."""

import pytest

from repro.__main__ import build_parser, main, parse_arith
from repro.arith.bigfloat import AdaptiveBigFloatArithmetic, BigFloatArithmetic
from repro.arith.posit import PositArithmetic
from repro.arith.vanilla import VanillaArithmetic


@pytest.fixture
def program(tmp_path):
    p = tmp_path / "prog.fpc"
    p.write_text("""
    long main() {
        double x = 1.0;
        for (long i = 0; i < 5; i = i + 1) { x = x / 3.0 + 1.0; }
        printf("x=%.12g\\n", x);
        return 0;
    }
    """)
    return str(p)


class TestParseArith:
    def test_specs(self):
        assert isinstance(parse_arith("vanilla"), VanillaArithmetic)
        a = parse_arith("mpfr:128")
        assert isinstance(a, BigFloatArithmetic) and a.precision == 128
        assert isinstance(parse_arith("mpfr"), BigFloatArithmetic)
        p = parse_arith("posit:16:1")
        assert isinstance(p, PositArithmetic)
        assert p.env.nbits == 16 and p.env.es == 1
        ad = parse_arith("adaptive:32:256")
        assert isinstance(ad, AdaptiveBigFloatArithmetic)
        assert ad.precision == 32 and ad.max_precision == 256

    def test_bad_spec(self):
        with pytest.raises(SystemExit):
            parse_arith("ternary")


class TestCommands:
    def test_run_native(self, program, capsys):
        assert main(["run", program, "--native"]) == 0
        assert "x=1.49" in capsys.readouterr().out

    def test_run_fpvm_matches_native(self, program, capsys):
        main(["run", program, "--native"])
        native_out = capsys.readouterr().out
        assert main(["run", program, "--arith", "vanilla"]) == 0
        assert capsys.readouterr().out == native_out

    def test_run_stats_flag(self, program, capsys):
        main(["run", program, "--arith", "mpfr:64", "--stats"])
        err = capsys.readouterr().err
        assert "FP traps" in err and "mpfr64" in err

    def test_run_scenarios(self, program):
        for scenario in ("kernel", "hrt", "pipeline"):
            assert main(["run", program, "--scenario", scenario]) == 0

    def test_run_patch_mode(self, program):
        assert main(["run", program, "--patch-mode"]) == 0

    def test_run_static_and_instrumented(self, program, capsys):
        main(["run", program, "--native"])
        native_out = capsys.readouterr().out
        assert main(["run", program, "--mode", "static"]) == 0
        assert capsys.readouterr().out == native_out
        assert main(["run", program, "--mode", "static",
                     "--instrument"]) == 0
        assert capsys.readouterr().out == native_out

    def test_run_workload(self, capsys):
        assert main(["run", "--workload", "nas_is", "--size", "test"]) == 0
        assert "sorted=1" in capsys.readouterr().out

    def test_spy(self, program, capsys):
        assert main(["spy", program]) == 0
        out = capsys.readouterr().out
        assert "would trap under FPVM" in out
        assert "divsd" in out

    def test_analyze(self, program, capsys):
        assert main(["analyze", program]) == 0
        assert "patches total" in capsys.readouterr().out

    def test_list(self, capsys):
        assert main(["list"]) == 0
        out = capsys.readouterr().out
        for name in ("lorenz", "nas_cg", "enzo"):
            assert name in out

    def test_parser_rejects_missing_target(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["run"])


class TestBatchFlags:
    def test_run_batch_n(self, program, capsys):
        assert main(["run", program, "--native", "--batch", "2",
                     "--stats"]) == 0
        captured = capsys.readouterr()
        assert captured.out.count("x=1.49") == 2
        assert "lane0" in captured.out and "lane1" in captured.out
        assert "vector dispatches" in captured.err

    def test_run_lanes_file(self, program, tmp_path, capsys):
        lanes = tmp_path / "lanes.json"
        lanes.write_text('[{"label": "a"}, {"label": "b"}]')
        assert main(["run", program, "--native",
                     "--lanes", str(lanes)]) == 0
        out = capsys.readouterr().out
        assert "--- a ---" in out and "--- b ---" in out

    def test_lanes_file_validated(self, program, tmp_path):
        lanes = tmp_path / "lanes.json"
        lanes.write_text('[{"bogus_field": 1}]')
        with pytest.raises(SystemExit, match="unknown fields"):
            main(["run", program, "--native", "--lanes", str(lanes)])

    def test_batch_and_lanes_exclusive(self, program):
        with pytest.raises(SystemExit):
            build_parser().parse_args(
                ["run", program, "--batch", "2", "--lanes", "x.json"])

    def test_shared_parent_on_chaos_and_bench(self):
        parser = build_parser()
        args = parser.parse_args(["chaos", "--batch", "3"])
        assert args.batch == 3
        args = parser.parse_args(["bench", "--batch", "8"])
        assert args.batch == 8
