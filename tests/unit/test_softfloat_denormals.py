"""Edge coverage: denormals, underflow, and gradual-underflow flag
semantics in the soft FPU (the UE/DE trap sources of §4.1)."""

import math

from repro.ieee import bits as B
from repro.ieee.softfloat import Flags, SoftFPU

fpu = SoftFPU()

MIN_SUB = 5e-324                       # smallest subnormal
MIN_NORM = 2.2250738585072014e-308     # smallest normal


def f(x: float) -> int:
    return B.f64_to_bits(x)


class TestDenormalOperands:
    def test_de_flag_on_denormal_input(self):
        _, fl = fpu.add64(f(MIN_SUB), f(1.0))
        assert fl & Flags.DE
        _, fl = fpu.mul64(f(MIN_SUB), f(2.0))
        assert fl & Flags.DE

    def test_denormal_add_exact(self):
        r, fl = fpu.add64(f(MIN_SUB), f(MIN_SUB))
        assert B.bits_to_f64(r) == 2 * MIN_SUB
        assert not fl & Flags.PE  # exact within the subnormal lattice

    def test_denormal_times_two_exact(self):
        r, fl = fpu.mul64(f(3 * MIN_SUB), f(2.0))
        assert B.bits_to_f64(r) == 6 * MIN_SUB
        assert not fl & Flags.PE


class TestUnderflow:
    def test_mul_underflow_to_subnormal(self):
        r, fl = fpu.mul64(f(MIN_NORM), f(0.5))
        assert B.is_denormal64(r)
        assert not fl & Flags.PE  # halving is exact
        # exact subnormal result: no UE under masked semantics
        assert not fl & Flags.UE

    def test_mul_underflow_inexact_sets_ue(self):
        r, fl = fpu.mul64(f(MIN_NORM), f(0.1))
        assert B.is_denormal64(r)
        assert fl & Flags.PE and fl & Flags.UE

    def test_underflow_to_zero(self):
        r, fl = fpu.mul64(f(MIN_SUB), f(0.1))
        assert B.is_zero64(r)
        assert fl & Flags.UE and fl & Flags.PE

    def test_div_underflow(self):
        r, fl = fpu.div64(f(MIN_NORM), f(3.0))
        assert B.is_denormal64(r)
        assert fl & Flags.UE

    def test_gradual_underflow_precision_loss(self):
        # a subnormal result inexact in its reduced-precision lattice
        r, fl = fpu.mul64(f(MIN_SUB * 3), f(1.0 / 3.0))
        assert fl & Flags.PE


class TestSubnormalConversions:
    def test_cvt_f64_to_f32_subnormal(self):
        tiny32 = 1e-40  # subnormal in binary32, normal in binary64
        r32, fl = fpu.cvt_f64_to_f32(f(tiny32))
        assert B.is_denormal32(r32)
        assert fl & Flags.PE and fl & Flags.UE

    def test_cvt_f32_subnormal_to_f64_exact(self):
        sub32 = 0x0000_0001  # smallest binary32 subnormal
        r, fl = fpu.cvt_f32_to_f64(sub32)
        assert B.bits_to_f64(r) == 2.0 ** -149
        assert fl & Flags.DE
        assert not fl & Flags.PE

    def test_sqrt_of_subnormal(self):
        r, fl = fpu.sqrt64(f(MIN_SUB))
        assert B.bits_to_f64(r) == math.sqrt(MIN_SUB)
        assert fl & Flags.DE


class TestSignedZeroLattice:
    def test_neg_zero_sum(self):
        r, fl = fpu.add64(f(-0.0), f(-0.0))
        assert r == B.F64_SIGN_BIT and fl == 0

    def test_pos_plus_neg_zero(self):
        r, _ = fpu.add64(f(0.0), f(-0.0))
        assert r == 0  # RNE: +0

    def test_subnormal_minus_itself(self):
        r, fl = fpu.sub64(f(MIN_SUB), f(MIN_SUB))
        assert B.is_zero64(r)
        assert not fl & Flags.UE  # exact zero is not an underflow
