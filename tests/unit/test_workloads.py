"""Unit tests for the workload ports: each builds, runs, and produces
physically sensible output."""

import math
import re

import pytest

from repro.workloads import WORKLOADS, get_workload
from repro.session import Session


class TestRegistry:
    def test_all_ten_paper_codes_present(self):
        expected = {"fbench", "lorenz", "three_body", "miniaero", "nas_is",
                    "nas_ep", "nas_cg", "nas_mg", "nas_lu", "enzo"}
        assert expected <= set(WORKLOADS)
        # non-paper entries (the sanitizer's seeded-bug workloads) are
        # marked by a missing paper slowdown
        extras = set(WORKLOADS) - expected
        assert all(WORKLOADS[n].paper_slowdown_r815 is None
                   for n in extras)

    def test_get_workload(self):
        assert get_workload("lorenz").name == "lorenz"
        with pytest.raises(KeyError):
            get_workload("spec2006")

    def test_specs_have_paper_slowdowns(self):
        for spec in WORKLOADS.values():
            if spec.paper_slowdown_r815 is not None:
                assert spec.paper_slowdown_r815 > 1

    @pytest.mark.parametrize("name", sorted(WORKLOADS))
    def test_builds_at_every_size(self, name):
        spec = WORKLOADS[name]
        for size in ("test", "bench"):
            binary = spec.build(size)
            assert binary.entry in binary.text_map


class TestOutputs:
    def _run(self, name, size="test"):
        return Session(lambda: WORKLOADS[name].build(size), None).run(5_000_000)

    def test_lorenz_stays_on_attractor(self):
        r = self._run("lorenz")
        m = re.search(r"final x=(\S+) y=(\S+) z=(\S+)", r.stdout)
        x, y, z = (float(g) for g in m.groups())
        assert abs(x) < 25 and abs(y) < 30 and 0 < z < 50

    def test_three_body_energy_nearly_conserved(self):
        r = self._run("three_body")
        drift = float(re.search(r"drift=(\S+)", r.stdout).group(1))
        assert abs(drift) < 1e-3  # leapfrog: small bounded drift

    def test_fbench_aberration_positive(self):
        r = self._run("fbench")
        marg = float(re.search(r"marginal focal=(\S+)", r.stdout).group(1))
        parax = float(re.search(r"paraxial focal=(\S+)", r.stdout).group(1))
        assert math.isfinite(marg) and math.isfinite(parax)
        assert marg != parax  # spherical aberration exists

    def test_nas_is_sorts(self):
        r = self._run("nas_is")
        assert "sorted=1" in r.stdout

    def test_nas_ep_accepts_reasonable_fraction(self):
        r = self._run("nas_ep")
        m = re.search(r"pairs=(\d+) accepted=(\d+)", r.stdout)
        pairs, acc = int(m.group(1)), int(m.group(2))
        # pi/4 ~ 78% acceptance
        assert 0.4 * pairs < acc <= pairs

    def test_nas_cg_converges_to_shifted_eigenvalue(self):
        r = self._run("nas_cg")
        zeta = float(re.search(r"final zeta=(\S+)", r.stdout).group(1))
        assert 10.0 < zeta < 11.5  # shift 10 + 1/lambda_max

    def test_nas_mg_reduces_residual(self):
        r = self._run("nas_mg", size="bench")  # 2 cycles
        norms = [float(x) for x in re.findall(r"rnorm=(\S+)", r.stdout)]
        assert len(norms) >= 2 and norms[-1] < norms[0]

    def test_nas_lu_small_residual(self):
        r = self._run("nas_lu")
        resid = float(re.search(r"resid=(\S+)", r.stdout).group(1))
        assert resid < 1e-10

    def test_miniaero_conserves_mass(self):
        r = self._run("miniaero")
        mass = float(re.search(r"mass=(\S+)", r.stdout).group(1))
        # Sod tube mean density (reflective walls conserve mass)
        assert mass == pytest.approx((1.0 + 0.125) / 2, rel=1e-6)

    def test_enzo_density_positive(self):
        r = self._run("enzo")
        rho = float(re.search(r"rho_max=(\S+)", r.stdout).group(1))
        assert rho > 0

    def test_randlc_matches_reference(self):
        """The fpc randlc must equal the canonical NAS generator."""
        from repro.workloads.nas.common import RANDLC_FPC
        from repro.compiler import compile_source
        from repro.machine.loader import load_binary

        src = RANDLC_FPC.replace("{{", "{").replace("}}", "}") + """
        long main() {
            for (long i = 0; i < 5; i = i + 1) {
                printf("%.17g\\n", randlc());
            }
            return 0;
        }
        """
        m = load_binary(compile_source(src))
        m.run()
        got = [float(x) for x in "".join(m.stdout).split()]

        # reference implementation in Python floats
        def ref():
            r23, r46 = 0.5**23, 0.5**46
            t23, t46 = 2.0**23, 2.0**46
            seed, a = 314159265.0, 1220703125.0
            outs = []
            for _ in range(5):
                t1 = r23 * a
                a1 = float(int(t1))
                a2 = a - t23 * a1
                t1 = r23 * seed
                x1 = float(int(t1))
                x2 = seed - t23 * x1
                t1 = a1 * x2 + a2 * x1
                t2 = float(int(r23 * t1))
                z = t1 - t23 * t2
                t3 = t23 * z + a2 * x2
                t4 = float(int(r46 * t3))
                x3 = t3 - t46 * t4
                seed = x3
                outs.append(r46 * x3)
            return outs

        assert got == ref()
