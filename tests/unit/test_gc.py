"""Unit tests for the conservative bipartite mark-and-sweep GC."""

from repro.ieee.bits import f64_to_bits
from repro.fpvm.gc import ConservativeGC
from repro.fpvm.nanbox import NaNBoxCodec
from repro.fpvm.shadow import ShadowStore
from conftest import asm_program
from repro.machine.loader import load_binary


def make_machine(data_words: int = 8):
    def body(a):
        a.emit("nop")

    def data(a):
        a.space("buf", 8 * data_words)

    binary = asm_program(body, data=data)
    return load_binary(binary), binary


def make_gc(epoch_cycles: int = 1000):
    store = ShadowStore()
    codec = NaNBoxCodec()
    return ConservativeGC(store, codec, epoch_cycles=epoch_cycles), \
        store, codec


class TestCollect:
    def test_unreferenced_shadow_collected(self):
        gc, store, codec = make_gc()
        m, _ = make_machine()
        h = store.alloc(1.5)
        stats = gc.collect(m)
        assert stats.freed == 1 and store.get(h) is None

    def test_box_in_memory_keeps_shadow_alive(self):
        gc, store, codec = make_gc()
        m, b = make_machine()
        h = store.alloc(2.5)
        m.memory.write(b.symbols["buf"], 8, codec.encode(h))
        stats = gc.collect(m)
        assert stats.freed == 0 and store.get(h) == 2.5

    def test_box_in_xmm_register_is_root(self):
        gc, store, codec = make_gc()
        m, _ = make_machine()
        h = store.alloc(3.5)
        m.regs.set_xmm_hi(7, codec.encode(h))
        assert gc.collect(m).freed == 0
        assert store.get(h) == 3.5

    def test_box_in_gpr_is_root(self):
        """movq can park a box in a GPR — GPRs must be roots."""
        gc, store, codec = make_gc()
        m, _ = make_machine()
        h = store.alloc(4.5)
        m.regs.set_gpr("r13", codec.encode(h))
        assert gc.collect(m).freed == 0

    def test_box_on_live_stack_kept_dead_stack_freed(self):
        gc, store, codec = make_gc()
        m, _ = make_machine()
        live = store.alloc(1.0)
        dead = store.alloc(2.0)
        rsp = m.regs.get_gpr("rsp")
        m.memory.write(rsp, 8, codec.encode(live))      # above rsp: live
        m.memory.write(rsp - 64, 8, codec.encode(dead))  # below rsp: dead
        stats = gc.collect(m)
        assert store.get(live) == 1.0
        assert store.get(dead) is None
        assert stats.freed == 1

    def test_heap_scanned_only_to_brk(self):
        gc, store, codec = make_gc()
        m, _ = make_machine()
        h = store.alloc(9.0)
        # beyond the break: not program-reachable memory
        m.memory.write(m.heap_brk + 4096, 8, codec.encode(h))
        assert gc.collect(m).freed == 1

    def test_plain_doubles_not_mistaken_for_boxes(self):
        gc, store, codec = make_gc()
        m, b = make_machine()
        h = store.alloc(5.0)
        m.memory.write(b.symbols["buf"], 8, f64_to_bits(123.456))
        assert gc.collect(m).freed == 1  # value data didn't mark anything

    def test_multiple_pass_stats(self):
        gc, store, codec = make_gc()
        m, b = make_machine()
        for i in range(10):
            store.alloc(float(i))
        keep = store.alloc(99.0)
        m.memory.write(b.symbols["buf"], 8, codec.encode(keep))
        s1 = gc.collect(m)
        assert s1.alive_before == 11 and s1.freed == 10 and s1.alive_after == 1
        s2 = gc.collect(m)
        assert s2.freed == 0
        assert len(gc.passes) == 2
        summary = gc.summary()
        assert summary["passes"] == 2
        assert summary["freed"] == 10

    def test_collect_fraction_mostly_garbage(self):
        """Paper: >95% of shadow values are collected per pass."""
        gc, store, codec = make_gc()
        m, b = make_machine()
        for i in range(100):
            store.alloc(float(i))
        keep = store.alloc(-1.0)
        m.memory.write(b.symbols["buf"], 8, codec.encode(keep))
        gc.collect(m)
        assert gc.summary()["collect_fraction"] > 0.95


def make_inc(epoch_cycles: int = 1000):
    store = ShadowStore()
    codec = NaNBoxCodec()
    gc = ConservativeGC(store, codec, epoch_cycles=epoch_cycles,
                        incremental=True)
    return gc, store, codec


class TestIncremental:
    def test_liveness_matches_full_collector(self):
        """Same machine state → identical freed/alive under both modes."""
        outcomes = []
        for make in (make_gc, make_inc):
            gc, store, codec = make()
            m, b = make_machine()
            live = store.alloc(1.5)
            reg = store.alloc(2.5)
            dead = store.alloc(3.5)
            m.memory.write(b.symbols["buf"], 8, codec.encode(live))
            m.regs.set_xmm_hi(4, codec.encode(reg))
            s = gc.collect(m)
            outcomes.append((s.freed, s.alive_after, store.get(live),
                             store.get(reg), store.get(dead)))
        assert outcomes[0] == outcomes[1]

    def test_steady_state_rescans_fewer_words(self):
        """Epoch 1 scans everything (all pages start dirty); epoch 2,
        with no intervening writes, replays remembered marks instead."""
        gc, store, codec = make_inc()
        m, b = make_machine(data_words=1024)
        h = store.alloc(7.0)
        m.memory.write(b.symbols["buf"], 8, codec.encode(h))
        s1 = gc.collect(m)
        s2 = gc.collect(m)
        assert s1.incremental and s2.incremental
        assert s2.words_scanned < s1.words_scanned
        assert s2.pages_scanned < s2.pages_total
        assert s2.remembered_marks >= 1   # h re-marked without a rescan
        assert store.get(h) == 7.0

    def test_write_redirties_page(self):
        """A store to a clean page must force a rescan of that page —
        both a new box and a dropped one have to be seen."""
        gc, store, codec = make_inc()
        m, b = make_machine(data_words=64)
        buf = b.symbols["buf"]
        h1 = store.alloc(1.0)
        m.memory.write(buf, 8, codec.encode(h1))
        gc.collect(m)                       # page now clean, h1 remembered
        h2 = store.alloc(2.0)
        m.memory.write(buf + 16, 8, codec.encode(h2))   # barrier fires
        s2 = gc.collect(m)
        assert s2.freed == 0
        assert store.get(h1) == 1.0 and store.get(h2) == 2.0
        # overwrite h1's slot with a plain double: next pass frees it
        m.memory.write(buf, 8, f64_to_bits(0.5))
        s3 = gc.collect(m)
        assert store.get(h1) is None and store.get(h2) == 2.0
        assert s3.freed == 1

    def test_write_bytes_barrier_marks_page(self):
        """Bulk writes (memcpy-style) go through write_bytes; its
        barrier must dirty the touched pages too."""
        import struct
        gc, store, codec = make_inc()
        m, b = make_machine(data_words=64)
        buf = b.symbols["buf"]
        gc.collect(m)                       # clean slate
        h = store.alloc(6.0)
        m.memory.write_bytes(buf + 24, struct.pack("<Q", codec.encode(h)))
        assert gc.collect(m).freed == 0
        assert store.get(h) == 6.0

    def test_clipped_boundary_pages_stay_dirty(self):
        """Pages only partially covered by the scan (heap clipped to
        brk, stack clipped to rsp) must never be marked clean — the
        unscanned remainder could hold a box next epoch."""
        gc, store, codec = make_inc()
        m, _ = make_machine()
        gc.collect(m)
        s2 = gc.collect(m)
        # the rsp / brk boundary pages are rescanned every pass
        assert s2.pages_scanned >= 1

    def test_on_sweep_reports_freed_handles(self):
        gc, store, codec = make_inc()
        m, b = make_machine()
        swept = []
        gc.on_sweep = lambda handles: swept.append(tuple(handles))
        keep = store.alloc(1.0)
        drop = store.alloc(2.0)
        m.memory.write(b.symbols["buf"], 8, codec.encode(keep))
        gc.collect(m)
        assert swept and drop in swept[0] and keep not in swept[0]
        swept.clear()
        gc.collect(m)               # nothing freed → callback not invoked
        assert swept == []


class TestSweepVsTraceRecording:
    """Regression: a GC sweep reclaiming shadow handles mid-trace-
    recording must abort the recording cleanly (never bake a stale
    handle into a compiled trace), and the runtime must notify the
    recorder *before* the BindCache flush."""

    @staticmethod
    def _loop_machine(n=64):
        from repro.isa.operands import Imm, Label, Reg

        def body(a):
            a.emit("mov", Reg("rcx"), Imm(n))
            a.label("loop")
            a.emit("dec", Reg("rcx"))
            a.emit("jne", Label("loop"))

        return load_binary(asm_program(body))

    def test_note_sweep_aborts_only_inflight_recording(self):
        from repro.fpvm.tracejit import TraceJIT

        m = self._loop_machine()
        tj = TraceJIT(m, threshold=4)
        tj.note_sweep([1, 2])               # idle: nothing to abort
        assert tj._abort_reason is None
        tj._recording = True
        tj.note_sweep([3])
        assert tj._abort_reason == "gc-sweep"

    def test_sweep_during_recording_discards_trace(self):
        """A step that triggers a sweep mid-recording aborts that
        recording; three strikes blacklist the loop, and the program
        still completes with the interpreter's exact result."""
        from repro.fpvm.tracejit import TraceJIT

        m = self._loop_machine(n=64)
        tj = TraceJIT(m, threshold=4)
        tj.attach()
        # make one loop-body step behave like it swept live handles
        addr = next(a for a, ins in m.binary.text_map.items()
                    if ins.mnemonic == "dec")
        original = m._code[addr]

        def sweeping_step():
            tj.note_sweep([7])
            original()

        sweeping_step._body = original._body
        sweeping_step._C = original._C
        m._code[addr] = sweeping_step
        m._blocks = {a: m._code[a] for a in m._code}
        m.run()
        assert m.halted and m.regs.get_gpr("rcx") == 0
        assert tj.stats.trace_record_aborts >= 3
        assert tj.stats.trace_loops_compiled == 0
        assert not tj.traces

    def test_runtime_notifies_recorder_before_bind_cache(self):
        from repro.arith import VanillaArithmetic
        from repro.fpvm.runtime import FPVM, FPVMConfig

        m = self._loop_machine()
        fpvm = FPVM(VanillaArithmetic(),
                    FPVMConfig(trace_jit_threshold=4))
        fpvm.install(m)
        assert fpvm.tracejit is not None
        order = []
        fpvm.tracejit.note_sweep = lambda freed: order.append("recorder")
        fpvm.bind_cache.invalidate_swept = (
            lambda freed: (order.append("bindcache"), set())[1])
        fpvm._on_gc_sweep([5])
        assert order == ["recorder", "bindcache"]


class TestEpochs:
    def test_maybe_collect_respects_epoch(self):
        gc, store, codec = make_gc(epoch_cycles=1000)
        m, _ = make_machine()
        m.cost.cycles = 500
        assert gc.maybe_collect(m) is None
        m.cost.cycles = 1500
        assert gc.maybe_collect(m) is not None
        # immediately after: epoch not yet elapsed again
        assert gc.maybe_collect(m) is None

    def test_gc_charges_model_cycles(self):
        gc, store, codec = make_gc()
        m, _ = make_machine()
        store.alloc(1.0)
        gc.collect(m)
        assert m.cost.buckets.get("gc", 0) > 0
