"""Property: a batched run of N randomized lanes is bit-identical
per-lane to N scalar runs.

This is the soundness contract of the SoA batch engine
(:class:`repro.machine.batch.BatchMachine`): whatever mix of
parameters and stdin the lanes carry — including lanes that force
branch divergence, FPVM traps, contained machine errors, and watchdog
expiry — every lane must report exactly the stdout, exit code,
instruction/FP counts, modeled cycles, and final register file that a
scalar :meth:`Session.run` of the same configuration produces.  Mixed
arithmetic specs inside one batch are disallowed by construction (one
Session = one arithmetic); mixed stdin/params are the point.
"""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro import compile_source
from repro.errors import MachineError
from repro.ieee.bits import f64_to_bits
from repro.session import LaneSpec, Session

# params poke data symbols; getchar consumes per-lane stdin; the loop
# bound and the x>2.0 branch make control flow data-dependent, so
# unequal lanes force divergence spills mid-batch
SRC = """
double scale;
double steps;
long main() {
    double x = 1.0;
    long c = getchar();
    long n = 0;
    while (c >= 0) { n = n + 1; x = x + (double)c; c = getchar(); }
    long limit = (long)steps;
    for (long i = 0; i < limit; i = i + 1) {
        x = x / scale + 1.0;
        if (x > 2.0) { x = x - 0.5; }
    }
    printf("%.17g %ld\\n", x, n);
    return n;
}
"""


def scalar_reference(arith, spec: LaneSpec):
    """Run one lane's configuration through the scalar interpreter."""
    s = Session(compile_source(SRC), arith)
    for name, val in (spec.params or {}).items():
        s.machine.memory.write(s.binary.symbols[name], 8,
                               f64_to_bits(float(val)))
    if spec.stdin:
        raw = spec.stdin
        s.machine.stdin = raw.encode() if isinstance(raw, str) else raw
    try:
        return s.run(spec.max_instructions,
                     max_cycles=spec.max_cycles), None
    except MachineError as exc:
        return None, exc


def assert_lane_matches(lane, ref, exc):
    if exc is not None:
        assert lane.error is not None, (
            f"scalar raised {type(exc).__name__} but lane completed")
        assert lane.error_type == type(exc).__name__
        assert lane.error == str(exc)
        return
    assert lane.error is None, f"lane failed: {lane.error}"
    assert lane.stdout == ref.stdout
    assert lane.exit_code == ref.exit_code
    assert lane.instr_count == ref.instr_count
    assert lane.fp_instr_count == ref.fp_instr_count
    assert lane.fp_traps == ref.fp_traps
    assert lane.cycles == ref.cycles
    assert lane.final_regs == ref.final_regs


lane_strategy = st.builds(
    LaneSpec,
    params=st.fixed_dictionaries({
        # scale=0.0 drives x to inf (a spill + SoftFPU path under
        # batch); tiny scales overflow toward the FP envelope edges
        "scale": st.sampled_from([0.5, 2.0, 3.0, 7.0, 0.0]),
        "steps": st.sampled_from([0.0, 1.0, 4.0, 9.0, 23.0]),
    }),
    stdin=st.binary(max_size=5),
    max_instructions=st.one_of(st.none(), st.integers(60, 600)),
)


@settings(max_examples=5, deadline=None)
@given(specs=st.lists(lane_strategy, min_size=2, max_size=5))
def test_batch_native_bit_identical(specs):
    batch = Session(compile_source(SRC), None).run_batch(specs)
    assert len(batch) == len(specs)
    for spec, lane in zip(specs, batch):
        ref, exc = scalar_reference(None, spec)
        assert_lane_matches(lane, ref, exc)


@settings(max_examples=3, deadline=None)
@given(specs=st.lists(lane_strategy, min_size=2, max_size=3))
def test_batch_fpvm_bit_identical(specs):
    """Under FPVM every FP-trapping site spills the lane to the scalar
    interpreter with full FPVM state — results must still match."""
    batch = Session(compile_source(SRC), "mpfr:80").run_batch(specs)
    for spec, lane in zip(specs, batch):
        ref, exc = scalar_reference("mpfr:80", spec)
        assert_lane_matches(lane, ref, exc)


class TestDirectedLanes:
    """Deterministic corners the random sweep may not always hit."""

    def test_divergence_heavy(self):
        specs = [LaneSpec(params={"scale": 3.0, "steps": float(k)})
                 for k in (0, 1, 2, 5, 11, 24)]
        batch = Session(compile_source(SRC), None).run_batch(specs)
        assert batch.spill_events > 0  # unequal loop bounds must spill
        for spec, lane in zip(specs, batch):
            ref, exc = scalar_reference(None, spec)
            assert_lane_matches(lane, ref, exc)

    def test_watchdog_expiry_per_lane(self):
        specs = [
            LaneSpec(params={"scale": 3.0, "steps": 20.0}),
            LaneSpec(params={"scale": 3.0, "steps": 20.0},
                     max_instructions=50),
            LaneSpec(params={"scale": 3.0, "steps": 20.0},
                     max_cycles=40.0),
        ]
        batch = Session(compile_source(SRC), None).run_batch(specs)
        assert batch[0].error is None
        assert batch[1].error_type == "WatchdogExpired"
        assert batch[2].error_type == "WatchdogExpired"
        for spec, lane in zip(specs, batch):
            ref, exc = scalar_reference(None, spec)
            assert_lane_matches(lane, ref, exc)

    def test_contained_error_lane(self):
        src = """
        double d;
        long main() {
            long q = 100 / (long)d;
            printf("%ld\\n", q);
            return q;
        }
        """
        specs = [LaneSpec(params={"d": 5.0}), LaneSpec(params={"d": 0.0}),
                 LaneSpec(params={"d": 7.0})]
        batch = Session(compile_source(src), None).run_batch(specs)
        assert batch[0].error is None and batch[2].error is None
        assert batch[1].error_type == "MachineError"
        assert "divide" in batch[1].error

    def test_mixed_stdin(self):
        specs = [LaneSpec(stdin=b"ab"), LaneSpec(stdin=b""),
                 LaneSpec(stdin=b"hello")]
        batch = Session(compile_source(SRC), None).run_batch(specs)
        for spec, lane in zip(specs, batch):
            ref, exc = scalar_reference(None, spec)
            assert_lane_matches(lane, ref, exc)

    def test_fpvm_trap_lanes(self):
        src = """
        double rho;
        double main() {
            double x = 1e-300;
            for (long i = 0; i < 12; i = i + 1) { x = x / rho; }
            printf("%.17g\\n", x);
            return 0.0;
        }
        """
        specs = [LaneSpec(params={"rho": 2.0 + i}) for i in range(3)]
        batch = Session(compile_source(src), "mpfr:200").run_batch(specs)
        assert batch.spilled_lanes == 3  # FP trap surface spills all
        for spec, lane in zip(specs, batch):
            s = Session(compile_source(src), "mpfr:200")
            s.machine.memory.write(s.binary.symbols["rho"], 8,
                                   f64_to_bits(spec.params["rho"]))
            ref = s.run()
            assert lane.fp_traps == ref.fp_traps
            assert_lane_matches(lane, ref, None)
