"""Differential tests for the trap-site JIT: compiled sites and fused
shadow kernels must be observationally identical to pure trap servicing.

The contract (``repro.fpvm.jit``): with the JIT enabled, a run produces
the same stdout, exit code, dynamic instruction count, and FP
instruction count as the same run with the JIT disabled, for every
arithmetic.  (Modeled cycles and ``fp_traps`` legitimately differ — a
patched site absorbs events without delivering faults, and charges
the cheaper jit-path costs.)
"""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.compiler import compile_source
from repro.fpvm.runtime import FPVMConfig
from repro.session import Session

ARITHS = ["vanilla", "mpfr:64", "posit:32:2"]
WORKLOADS = ["lorenz", "fbench", "three_body"]


def _observed(res):
    return (res.stdout, res.exit_code, res.instr_count, res.fp_instr_count)


def _pair(target, arith, *, size=None, threshold=2, **cfg):
    """Run ``target`` twice — JIT off and JIT on — and return both."""
    kw = {"size": size} if size else {}
    off = Session(target, arith, config=FPVMConfig(**cfg), **kw).run()
    on = Session(target, arith,
                 config=FPVMConfig(jit_threshold=threshold, **cfg),
                 **kw).run()
    return off, on


# --------------------------------------------------------------------------- #
# registry workloads × arithmetics                                             #
# --------------------------------------------------------------------------- #

@pytest.mark.parametrize("arith", ARITHS)
@pytest.mark.parametrize("name", WORKLOADS)
def test_workload_jit_identical(name, arith):
    off, on = _pair(name, arith, size="test")
    assert _observed(on) == _observed(off)
    stats = on.fpvm.stats
    assert stats.jit_sites_compiled > 0
    assert stats.jit_hits > 0
    # the patched sites must absorb real trap traffic
    assert on.fp_traps < off.fp_traps


# --------------------------------------------------------------------------- #
# fused shadow kernels (chains of adjacent patched sites)                      #
# --------------------------------------------------------------------------- #

_FUSION_SRCS = {
    "pair": """
    long main() {
        double s = 0.1;
        for (long i = 0; i < 60; i = i + 1) {
            s = s / 1.0000001 + 0.0000001;
        }
        printf("%.17g\\n", s);
        return 0;
    }
    """,
    # sqrt inside the chain: the carried value feeds a unary op
    "sqrt_chain": """
    long main() {
        double s = 2.0;
        for (long i = 0; i < 60; i = i + 1) {
            s = sqrt(s * 1.125) + 0.25;
        }
        printf("%.17g\\n", s);
        return 0;
    }
    """,
    # a NaN materializes mid-chain on even iterations (0/0) and must
    # surface identically; odd iterations trap on inexactness, so both
    # chain members still compile and fuse
    "nan_chain": """
    double num[2] = { 0.0, 1.0 };
    double den[2] = { 0.0, 3.0 };
    long main() {
        double s = 0.0;
        for (long i = 0; i < 40; i = i + 1) {
            s = num[i & 1] / den[i & 1] + 0.1;
        }
        printf("%.17g\\n", s);
        return 0;
    }
    """,
}


@pytest.mark.parametrize("arith", ARITHS)
@pytest.mark.parametrize("shape", sorted(_FUSION_SRCS))
def test_fused_kernel_identical(shape, arith):
    builder = lambda: compile_source(_FUSION_SRCS[shape])
    off, on = _pair(builder, arith)
    assert _observed(on) == _observed(off)
    stats = on.fpvm.stats
    assert stats.jit_fused_kernels > 0
    assert stats.jit_hits > 0


def test_pair_kernel_elides_boxes():
    """The divsd+addsd chain keeps its intermediate register-resident:
    one box per iteration instead of two."""
    builder = lambda: compile_source(_FUSION_SRCS["pair"])
    _, on = _pair(builder, "vanilla")
    assert on.fpvm.stats.boxes_elided > 40


# --------------------------------------------------------------------------- #
# random fusible programs                                                      #
# --------------------------------------------------------------------------- #

_OPS = ["+", "-", "*", "/"]


@given(st.lists(st.tuples(st.sampled_from(_OPS),
                          st.floats(min_value=0.5, max_value=2.0,
                                    allow_nan=False)
                          .map(lambda v: round(v, 4))),
                min_size=2, max_size=4),
       st.floats(min_value=0.1, max_value=4.0,
                 allow_nan=False).map(lambda v: round(v, 4)))
@settings(max_examples=20, deadline=None)
def test_random_chain_jit_identical(steps, seed):
    """Random op chains over one accumulator — the exact shape the
    fuser targets — must be bit-identical with the JIT on."""
    body = "".join(f"        s = s {op} {c!r};\n" for op, c in steps)
    src = f"""
    long main() {{
        double s = {seed!r};
        for (long i = 0; i < 30; i = i + 1) {{
    {body}
        }}
        printf("%.17g\\n", s);
        return 0;
    }}
    """
    builder = lambda: compile_source(src)
    from repro.trace.profiler import ProfilerSink

    prof = ProfilerSink()
    off = Session(builder, "vanilla", trace=prof).run()
    on = Session(builder, "vanilla",
                 config=FPVMConfig(jit_threshold=2)).run()
    assert _observed(on) == _observed(off)
    # a site only records a jit *hit* once it re-executes after its
    # trap count reaches the threshold, so demand jit traffic only
    # when some single site trapped past the threshold in the
    # unjitted run — total trap count spread thinly across sites is
    # not enough to compile anything
    hottest = max((s.traps for s in prof.hot_sites(10_000)), default=0)
    assert on.fpvm.stats.jit_hits > 0 or hottest <= 2


# --------------------------------------------------------------------------- #
# incremental GC under the JIT                                                 #
# --------------------------------------------------------------------------- #

@pytest.mark.parametrize("name", ["lorenz", "fbench"])
def test_incremental_gc_jit_identical(name):
    """JIT + incremental GC together must still match the vanilla
    trap-serviced run with the full collector."""
    base = Session(name, "vanilla", size="test",
                   config=FPVMConfig()).run()
    inc = Session(name, "vanilla", size="test",
                  config=FPVMConfig(jit_threshold=2,
                                    gc_mode="incremental")).run()
    assert _observed(inc) == _observed(base)
    assert inc.fpvm.stats.jit_hits > 0
