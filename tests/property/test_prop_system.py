"""System-level property tests: random programs through the whole
pipeline (compile → analyze → patch → FPVM) and GC liveness laws."""

import math

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.arith import VanillaArithmetic
from repro.compiler import compile_source
from repro.fpvm.gc import ConservativeGC
from repro.fpvm.nanbox import NaNBoxCodec
from repro.fpvm.shadow import ShadowStore
from conftest import asm_program
from repro.machine.loader import load_binary
from repro.session import Session


# --------------------------------------------------------------------------- #
# random expression programs: native == FPVM+Vanilla (the validation law)      #
# --------------------------------------------------------------------------- #

@st.composite
def fp_expr(draw, depth=0):
    """A random fpc double expression over variables a, b, c."""
    if depth > 3 or draw(st.booleans()):
        leaf = draw(st.sampled_from(
            ["a", "b", "c", "0.5", "2.0", "1.5", "0.1", "3.0"]))
        return leaf
    op = draw(st.sampled_from(["+", "-", "*", "/"]))
    lhs = draw(fp_expr(depth=depth + 1))
    rhs = draw(fp_expr(depth=depth + 1))
    if op == "/":
        rhs = f"({rhs} * {rhs} + 0.25)"  # keep denominators positive
    fn = draw(st.sampled_from(["", "", "", "sqrt", "fabs", "-"]))
    body = f"({lhs} {op} {rhs})"
    if fn == "sqrt":
        return f"sqrt(fabs{body})"
    if fn == "-":
        return f"(-{body})"
    if fn == "fabs":
        return f"fabs{body}"
    return body


@given(fp_expr(),
       st.floats(min_value=-8, max_value=8,
                 allow_nan=False).map(lambda v: round(v, 3)),
       st.floats(min_value=-8, max_value=8,
                 allow_nan=False).map(lambda v: round(v, 3)),
       st.floats(min_value=0.1, max_value=8,
                 allow_nan=False).map(lambda v: round(v, 3)))
@settings(max_examples=40, deadline=None)
def test_random_expression_validates(expr, a, b, c):
    """For any random expression: native output == FPVM+Vanilla output,
    and the static patcher never breaks it."""
    src = f"""
    long main() {{
        double a = {a!r};
        double b = {b!r};
        double c = {c!r};
        double r = {expr};
        printf("%.17g\\n", r);
        printf("bits=%d\\n", __bits(r) & 4095);
        return 0;
    }}
    """
    native = Session(lambda: compile_source(src), None).run()
    virt = Session(lambda: compile_source(src), VanillaArithmetic()).run()
    assert virt.stdout == native.stdout


@given(st.lists(st.integers(min_value=-1000, max_value=1000),
                min_size=1, max_size=12))
@settings(max_examples=30, deadline=None)
def test_random_int_reduction_program(values):
    """Pure integer programs run identically with and without FPVM and
    produce Python-checkable results."""
    items = ", ".join(str(v) for v in values)
    src = f"""
    long data[{len(values)}] = {{ {items} }};
    long main() {{
        long s = 0;
        long mx = data[0];
        for (long i = 0; i < {len(values)}; i = i + 1) {{
            s = s + data[i];
            if (data[i] > mx) {{ mx = data[i]; }}
        }}
        printf("%d %d\\n", s, mx);
        return 0;
    }}
    """
    native = Session(lambda: compile_source(src), None).run()
    expect = f"{sum(values)} {max(values)}\n"
    assert native.stdout == expect
    virt = Session(lambda: compile_source(src), VanillaArithmetic()).run()
    assert virt.stdout == expect


# --------------------------------------------------------------------------- #
# GC liveness law                                                              #
# --------------------------------------------------------------------------- #

@given(st.sets(st.integers(min_value=0, max_value=63), max_size=20),
       st.integers(min_value=1, max_value=40))
@settings(max_examples=60, deadline=None)
def test_gc_never_collects_reachable(live_slots, n_dead):
    """Shadow values referenced from writable memory survive any pass;
    everything else is collected."""
    def body(a):
        a.emit("nop")

    def data(a):
        a.space("arena", 64 * 8)

    m = load_binary(asm_program(body, data=data))
    base = m.binary.symbols["arena"]
    store = ShadowStore()
    codec = NaNBoxCodec()
    gc = ConservativeGC(store, codec)

    live = {}
    for slot in live_slots:
        h = store.alloc(float(slot))
        live[h] = float(slot)
        m.memory.write(base + 8 * slot, 8, codec.encode(h))
    dead = [store.alloc(-1.0) for _ in range(n_dead)]

    stats = gc.collect(m)
    assert stats.freed == n_dead
    for h, v in live.items():
        assert store.get(h) == v
    for h in dead:
        assert h in live or store.get(h) is None
