"""Property: the serving tier's exactly-once guarantee under chaos.

For any batch of jobs and any chaos plan that kills ``k < pool_size``
workers mid-campaign, every submitted job completes exactly once and
each result is bit-identical to executing the same job fault-free in
this process (same ``execute_job``, no pool, no kills).
"""

import threading
import time

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.serve.jobs import JobRequest
from repro.serve.pool import JobRecord, WorkerPool
from repro.serve.worker import execute_job

POOL_SIZE = 3

_SRC = """
long main() {{
    double x = {seed};
    for (long i = 0; i < {iters}; i = i + 1) {{
        x = x / 3.0 + {step};
    }}
    printf("%.17g\\n", x);
    return 0;
}}
"""


def _job(iters: int, seed_tenths: int, step_tenths: int) -> JobRequest:
    return JobRequest.from_wire({
        "source": _SRC.format(seed=f"{seed_tenths / 10:.1f}",
                              iters=iters,
                              step=f"{step_tenths / 10:.1f}"),
        "arith": "mpfr:64",
        "chaos": {"sleep_s": 0.05},   # keep jobs killable mid-flight
    })


jobs_strategy = st.lists(
    st.tuples(st.integers(1, 30), st.integers(5, 30),
              st.integers(5, 30)),
    min_size=3, max_size=7)


@settings(max_examples=5, deadline=None)
@given(jobs=jobs_strategy,
       kills=st.integers(1, POOL_SIZE - 1),
       chaos_seed=st.integers(0, 2**16))
def test_chaos_kills_never_lose_or_duplicate_jobs(jobs, kills,
                                                  chaos_seed):
    requests = [_job(*spec) for spec in jobs]
    # fault-free reference: the exact same executor, in this process
    reference = [execute_job(req, job_id=1000 + i)
                 for i, req in enumerate(requests)]
    for ref in reference:
        assert ref["ok"], ref["error"]

    pool = WorkerPool(POOL_SIZE, job_timeout_s=60.0, retries=4,
                      backoff_s=0.01)
    pool.start()
    completions: dict[int, int] = {}
    count_lock = threading.Lock()
    try:
        records = []
        for i, req in enumerate(requests):
            rec = JobRecord(i + 1, req, timeout_s=60.0, max_retries=4,
                            backoff_s=0.01)

            def count(r, _i=i):
                with count_lock:
                    completions[_i] = completions.get(_i, 0) + 1

            rec.add_done_callback(count)
            records.append(rec)
            pool.submit(rec)

        # kill k workers mid-campaign, preferring busy ones
        import random

        rng = random.Random(chaos_seed)
        killed = 0
        deadline = time.time() + 30
        while killed < kills and time.time() < deadline:
            busy = pool.busy_indices()
            victim = rng.choice(busy) if busy else None
            if pool.kill_worker(index=victim, busy_only=bool(busy),
                                reason="property-chaos") is not None:
                killed += 1
                time.sleep(0.02)
            else:
                time.sleep(0.005)

        for i, rec in enumerate(records):
            result = rec.wait(120)
            assert result is not None, f"job {i} never completed"
            assert result["ok"], (i, result["error"])
            ref = reference[i]
            assert result["stdout"] == ref["stdout"]
            assert result["exit_code"] == ref["exit_code"]
            assert result["instr_count"] == ref["instr_count"]
            assert result["fp_instr_count"] == ref["fp_instr_count"]
            assert result["fp_traps"] == ref["fp_traps"]
            assert result["binary_hash"] == ref["binary_hash"]
    finally:
        pool.stop()

    # exactly once: one completion callback per job, no duplicates
    assert completions == {i: 1 for i in range(len(records))}
    assert killed == kills
