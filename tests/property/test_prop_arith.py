"""Property-based tests for the alternative arithmetic systems:
bigfloat vs IEEE at prec=53, posit codec laws, NaN-box roundtrips,
and interval containment pinned against exact Fraction arithmetic."""

import math
from fractions import Fraction

from hypothesis import assume, example, given, settings
from hypothesis import strategies as st

from repro.ieee.bits import bits_to_f64, f64_to_bits
from repro.arith.bigfloat import BigFloatContext
from repro.arith.interval import IntervalArithmetic, _is_nai
from repro.arith.posit import PositArithmetic
from repro.arith.posit.encoding import PositEnv, decode, encode
from repro.fpvm.nanbox import MAX_HANDLE, NaNBoxCodec

finite = st.floats(allow_nan=False, allow_infinity=False)
nonzero = finite.filter(lambda x: x != 0.0)

CTX53 = BigFloatContext(53)


# --------------------------------------------------------------------------- #
# bigfloat at 53 bits == IEEE binary64                                         #
# --------------------------------------------------------------------------- #

@given(finite, finite)
@settings(max_examples=400)
def test_bigfloat53_add_matches_ieee(a, b):
    r = CTX53.add(CTX53.from_float(a), CTX53.from_float(b)).to_float()
    assert f64_to_bits(r) == f64_to_bits(a + b)


@given(finite, finite)
@settings(max_examples=400)
@example(
    a=0.01,
    b=2.225073858507203e-309,
).via('discovered failure')
def test_bigfloat53_mul_matches_ieee(a, b):
    r = CTX53.mul(CTX53.from_float(a), CTX53.from_float(b)).to_float()
    assert f64_to_bits(r) == f64_to_bits(a * b)


@given(finite, nonzero)
@settings(max_examples=400)
def test_bigfloat53_div_matches_ieee(a, b):
    r = CTX53.div(CTX53.from_float(a), CTX53.from_float(b)).to_float()
    assert f64_to_bits(r) == f64_to_bits(a / b)


@given(st.floats(min_value=0.0, allow_nan=False, allow_infinity=False))
def test_bigfloat53_sqrt_matches_ieee(a):
    r = CTX53.sqrt(CTX53.from_float(a)).to_float()
    assert r == math.sqrt(a)


@given(finite)
def test_bigfloat_roundtrip(x):
    assert CTX53.from_float(x).to_float() == x


@given(finite, finite)
def test_bigfloat_add_commutes(a, b):
    A, B_ = CTX53.from_float(a), CTX53.from_float(b)
    assert CTX53.cmp(CTX53.add(A, B_), CTX53.add(B_, A)) == 0


@given(finite, finite)
def test_bigfloat_cmp_matches_float_order(a, b):
    c = CTX53.cmp(CTX53.from_float(a), CTX53.from_float(b))
    if a < b:
        assert c == -1
    elif a > b:
        assert c == 1
    else:
        assert c == 0


@given(finite, st.integers(min_value=54, max_value=400))
def test_bigfloat_widening_is_exact(x, prec):
    """Promoting a double to >53 bits must be exact (no rounding)."""
    ctx = BigFloatContext(prec)
    assert ctx.from_float(x).to_float() == x


@given(finite)
def test_bigfloat_neg_involution(x):
    v = CTX53.from_float(x)
    assert CTX53.cmp(CTX53.neg(CTX53.neg(v)), v) == 0 or x == 0


# --------------------------------------------------------------------------- #
# posit laws                                                                   #
# --------------------------------------------------------------------------- #

posit_cfg = st.sampled_from([(8, 0), (8, 2), (16, 1), (16, 2), (32, 2),
                             (32, 3), (64, 2)])


@given(posit_cfg, st.integers(min_value=0, max_value=(1 << 64) - 1))
@settings(max_examples=400)
def test_posit_decode_encode_roundtrip(cfg, word):
    n, es = cfg
    env = PositEnv(n, es)
    word &= env.mask
    d = decode(env, word)
    if d is None or d[1] == 0:
        return
    s, m, e = d
    assert encode(env, s, m, e) == word


@given(posit_cfg, finite)
@settings(max_examples=300)
def test_posit_from_f64_faithful(cfg, x):
    """Faithful rounding: x must lie within one posit step of the
    conversion result (between the result's two word-neighbors)."""
    n, es = cfg
    p = PositArithmetic(n, es)
    w = p.from_f64_bits(f64_to_bits(x))
    if p.is_nan(w):
        return
    back = bits_to_f64(p.to_f64_bits(w))
    if x == 0:
        assert back == 0
        return
    # posit words are monotone in value: the previous/next words (in
    # signed order, skipping NaR) bracket everything that may round
    # to w
    lo_w = (w - 1) & p.env.mask
    hi_w = (w + 1) & p.env.mask
    vals = [back]
    for nb in (lo_w, hi_w):
        if not p.is_nan(nb):
            vals.append(bits_to_f64(p.to_f64_bits(nb)))
    # saturation: |x| beyond maxpos / below minpos clamps
    if w in (p.env.maxpos, (-p.env.maxpos) & p.env.mask,
             p.env.minpos, (-p.env.minpos) & p.env.mask):
        return
    assert min(vals) <= x <= max(vals)


@given(posit_cfg, st.integers(min_value=0, max_value=(1 << 64) - 1))
def test_posit_neg_involution(cfg, word):
    n, es = cfg
    p = PositArithmetic(n, es)
    word &= p.env.mask
    assert p.neg(p.neg(word)) == word


@given(st.integers(min_value=0, max_value=(1 << 16) - 1),
       st.integers(min_value=0, max_value=(1 << 16) - 1))
def test_posit16_compare_matches_value_order(wa, wb):
    p = PositArithmetic(16, 2)
    if p.is_nan(wa) or p.is_nan(wb):
        return
    va = bits_to_f64(p.to_f64_bits(wa))
    vb = bits_to_f64(p.to_f64_bits(wb))
    c = p.compare(wa, wb)
    if va < vb:
        assert c.value == "lt"
    elif va > vb:
        assert c.value == "gt"
    else:
        assert c.value == "eq"


@given(st.integers(min_value=0, max_value=255),
       st.integers(min_value=0, max_value=255))
def test_posit8_add_commutes(wa, wb):
    p = PositArithmetic(8, 2)
    assert p.add(wa, wb) == p.add(wb, wa)


@given(st.integers(min_value=0, max_value=255))
def test_posit8_mul_identity(w):
    p = PositArithmetic(8, 2)
    one = p.from_i64(1)
    assert p.mul(w, one) == (w & 0xFF)


# --------------------------------------------------------------------------- #
# NaN-boxing                                                                   #
# --------------------------------------------------------------------------- #

@given(st.integers(min_value=1, max_value=MAX_HANDLE),
       st.booleans())
def test_nanbox_roundtrip(handle, tag):
    c = NaNBoxCodec(tag_sign=tag)
    bits = c.encode(handle)
    assert c.is_box(bits)
    assert c.decode(bits) == handle
    assert c.is_candidate_word(bits)


@given(finite)
def test_values_never_look_like_boxes(x):
    c = NaNBoxCodec()
    assert not c.is_box(f64_to_bits(x))
    assert not c.is_candidate_word(f64_to_bits(x))


# --------------------------------------------------------------------------- #
# interval containment vs exact Fraction arithmetic                            #
# --------------------------------------------------------------------------- #

IV = IntervalArithmetic()

# three draws per operand: two become the interval endpoints, the
# median is a guaranteed-interior sample point
triple = st.tuples(finite, finite, finite)


def _iv_and_point(t):
    p, q, r = t
    lo, hi = min(p, q), max(p, q)
    return (lo, hi), sorted((p, q, r))[1]


def _contains(iv, true_value) -> bool:
    """True iff the (possibly NAI/unbounded) interval contains the
    exact result. NAI means "don't know" and is always sound."""
    if _is_nai(iv):
        return True
    lo, hi = iv
    if isinstance(true_value, float):
        if math.isnan(true_value):
            return False  # a NaN result demands NAI, not bounds
        if math.isinf(true_value):
            return (lo == true_value) or (hi == true_value)
        true_value = Fraction(true_value)
    lo_ok = lo == -math.inf or (not math.isinf(lo)
                                and Fraction(lo) <= true_value)
    hi_ok = hi == math.inf or (not math.isinf(hi)
                               and true_value <= Fraction(hi))
    return lo_ok and hi_ok


@given(triple, triple)
@settings(max_examples=200)
def test_interval_add_contains_exact(ta, tb):
    a, x = _iv_and_point(ta)
    b, y = _iv_and_point(tb)
    assert _contains(IV.add(a, b), Fraction(x) + Fraction(y))


@given(triple, triple)
@settings(max_examples=200)
def test_interval_sub_contains_exact(ta, tb):
    a, x = _iv_and_point(ta)
    b, y = _iv_and_point(tb)
    assert _contains(IV.sub(a, b), Fraction(x) - Fraction(y))


@given(triple, triple)
@settings(max_examples=200)
def test_interval_mul_contains_exact(ta, tb):
    a, x = _iv_and_point(ta)
    b, y = _iv_and_point(tb)
    assert _contains(IV.mul(a, b), Fraction(x) * Fraction(y))


@given(triple, triple)
@settings(max_examples=200)
def test_interval_div_contains_exact(ta, tb):
    a, x = _iv_and_point(ta)
    b, y = _iv_and_point(tb)
    assume(y != 0.0)
    assert _contains(IV.div(a, b), Fraction(x) / Fraction(y))


@given(triple, triple)
@settings(max_examples=200)
@example(ta=(2.999, 3.001, 3.0005), tb=(1.0, 1.0, 1.0)).via(
    "midpoint±width fmod was unsound across a discontinuity")
def test_interval_fmod_contains_exact(ta, tb):
    a, x = _iv_and_point(ta)
    b, y = _iv_and_point(tb)
    assume(y != 0.0)
    # math.fmod on finite doubles is exact, so it IS the true result
    assert _contains(IV.fmod(a, b), math.fmod(x, y))


@given(triple, st.integers(min_value=-5, max_value=5))
@settings(max_examples=200)
@example(ta=(-2.0, 3.0, 0.5), n=2).via("sign-crossing base, even power")
def test_interval_pow_contains_exact(ta, n):
    a, x = _iv_and_point(ta)
    assume(n >= 0 or x != 0.0)
    try:
        true = Fraction(x) ** n
    except OverflowError:
        return
    assert _contains(IV.pow(a, (float(n), float(n))), true)


@given(triple)
@settings(max_examples=200)
def test_interval_sqrt_contains_exact(ta):
    a, x = _iv_and_point(ta)
    assume(x >= 0.0)
    r = IV.sqrt(a)
    if _is_nai(r):
        return
    lo, hi = r
    # lo <= sqrt(x) <= hi, checked by exact squaring
    assert lo <= 0.0 or Fraction(lo) ** 2 <= Fraction(x)
    assert hi == math.inf or (hi >= 0.0 and Fraction(hi) ** 2 >= Fraction(x))


@given(finite, finite)
@settings(max_examples=200)
def test_interval_singleton_exactness_is_honest(x, y):
    """A degenerate (zero-width) result from singleton operands is a
    claim of exactness — verify it against Fraction arithmetic."""
    a, b = (x, x), (y, y)
    for op, fn in (("add", lambda: Fraction(x) + Fraction(y)),
                   ("sub", lambda: Fraction(x) - Fraction(y)),
                   ("mul", lambda: Fraction(x) * Fraction(y))):
        r = getattr(IV, op)(a, b)
        if not _is_nai(r) and r[0] == r[1] and math.isfinite(r[0]):
            assert Fraction(r[0]) == fn(), op
    if y != 0.0:
        r = IV.div(a, b)
        if not _is_nai(r) and r[0] == r[1] and math.isfinite(r[0]):
            assert Fraction(r[0]) == Fraction(x) / Fraction(y)


def test_interval_singleton_exact_ops_stay_degenerate():
    """Error-free singleton ops must not widen (the ranges pass leans
    on this to seed zero-error constants)."""
    assert IV.add((1.5, 1.5), (0.25, 0.25)) == (1.75, 1.75)
    assert IV.sub((3.0, 3.0), (1.0, 1.0)) == (2.0, 2.0)
    assert IV.mul((3.0, 3.0), (0.5, 0.5)) == (1.5, 1.5)
    assert IV.div((1.0, 1.0), (4.0, 4.0)) == (0.25, 0.25)
    assert IV.sqrt((2.25, 2.25)) == (1.5, 1.5)
    assert IV.fmod((7.5, 7.5), (2.0, 2.0)) == (1.5, 1.5)
