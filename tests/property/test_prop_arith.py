"""Property-based tests for the alternative arithmetic systems:
bigfloat vs IEEE at prec=53, posit codec laws, NaN-box roundtrips."""

import math

from hypothesis import assume, example, given, settings
from hypothesis import strategies as st

from repro.ieee.bits import bits_to_f64, f64_to_bits
from repro.arith.bigfloat import BigFloatContext
from repro.arith.posit import PositArithmetic
from repro.arith.posit.encoding import PositEnv, decode, encode
from repro.fpvm.nanbox import MAX_HANDLE, NaNBoxCodec

finite = st.floats(allow_nan=False, allow_infinity=False)
nonzero = finite.filter(lambda x: x != 0.0)

CTX53 = BigFloatContext(53)


# --------------------------------------------------------------------------- #
# bigfloat at 53 bits == IEEE binary64                                         #
# --------------------------------------------------------------------------- #

@given(finite, finite)
@settings(max_examples=400)
def test_bigfloat53_add_matches_ieee(a, b):
    r = CTX53.add(CTX53.from_float(a), CTX53.from_float(b)).to_float()
    assert f64_to_bits(r) == f64_to_bits(a + b)


@given(finite, finite)
@settings(max_examples=400)
@example(
    a=0.01,
    b=2.225073858507203e-309,
).via('discovered failure')
def test_bigfloat53_mul_matches_ieee(a, b):
    r = CTX53.mul(CTX53.from_float(a), CTX53.from_float(b)).to_float()
    assert f64_to_bits(r) == f64_to_bits(a * b)


@given(finite, nonzero)
@settings(max_examples=400)
def test_bigfloat53_div_matches_ieee(a, b):
    r = CTX53.div(CTX53.from_float(a), CTX53.from_float(b)).to_float()
    assert f64_to_bits(r) == f64_to_bits(a / b)


@given(st.floats(min_value=0.0, allow_nan=False, allow_infinity=False))
def test_bigfloat53_sqrt_matches_ieee(a):
    r = CTX53.sqrt(CTX53.from_float(a)).to_float()
    assert r == math.sqrt(a)


@given(finite)
def test_bigfloat_roundtrip(x):
    assert CTX53.from_float(x).to_float() == x


@given(finite, finite)
def test_bigfloat_add_commutes(a, b):
    A, B_ = CTX53.from_float(a), CTX53.from_float(b)
    assert CTX53.cmp(CTX53.add(A, B_), CTX53.add(B_, A)) == 0


@given(finite, finite)
def test_bigfloat_cmp_matches_float_order(a, b):
    c = CTX53.cmp(CTX53.from_float(a), CTX53.from_float(b))
    if a < b:
        assert c == -1
    elif a > b:
        assert c == 1
    else:
        assert c == 0


@given(finite, st.integers(min_value=54, max_value=400))
def test_bigfloat_widening_is_exact(x, prec):
    """Promoting a double to >53 bits must be exact (no rounding)."""
    ctx = BigFloatContext(prec)
    assert ctx.from_float(x).to_float() == x


@given(finite)
def test_bigfloat_neg_involution(x):
    v = CTX53.from_float(x)
    assert CTX53.cmp(CTX53.neg(CTX53.neg(v)), v) == 0 or x == 0


# --------------------------------------------------------------------------- #
# posit laws                                                                   #
# --------------------------------------------------------------------------- #

posit_cfg = st.sampled_from([(8, 0), (8, 2), (16, 1), (16, 2), (32, 2),
                             (32, 3), (64, 2)])


@given(posit_cfg, st.integers(min_value=0, max_value=(1 << 64) - 1))
@settings(max_examples=400)
def test_posit_decode_encode_roundtrip(cfg, word):
    n, es = cfg
    env = PositEnv(n, es)
    word &= env.mask
    d = decode(env, word)
    if d is None or d[1] == 0:
        return
    s, m, e = d
    assert encode(env, s, m, e) == word


@given(posit_cfg, finite)
@settings(max_examples=300)
def test_posit_from_f64_faithful(cfg, x):
    """Faithful rounding: x must lie within one posit step of the
    conversion result (between the result's two word-neighbors)."""
    n, es = cfg
    p = PositArithmetic(n, es)
    w = p.from_f64_bits(f64_to_bits(x))
    if p.is_nan(w):
        return
    back = bits_to_f64(p.to_f64_bits(w))
    if x == 0:
        assert back == 0
        return
    # posit words are monotone in value: the previous/next words (in
    # signed order, skipping NaR) bracket everything that may round
    # to w
    lo_w = (w - 1) & p.env.mask
    hi_w = (w + 1) & p.env.mask
    vals = [back]
    for nb in (lo_w, hi_w):
        if not p.is_nan(nb):
            vals.append(bits_to_f64(p.to_f64_bits(nb)))
    # saturation: |x| beyond maxpos / below minpos clamps
    if w in (p.env.maxpos, (-p.env.maxpos) & p.env.mask,
             p.env.minpos, (-p.env.minpos) & p.env.mask):
        return
    assert min(vals) <= x <= max(vals)


@given(posit_cfg, st.integers(min_value=0, max_value=(1 << 64) - 1))
def test_posit_neg_involution(cfg, word):
    n, es = cfg
    p = PositArithmetic(n, es)
    word &= p.env.mask
    assert p.neg(p.neg(word)) == word


@given(st.integers(min_value=0, max_value=(1 << 16) - 1),
       st.integers(min_value=0, max_value=(1 << 16) - 1))
def test_posit16_compare_matches_value_order(wa, wb):
    p = PositArithmetic(16, 2)
    if p.is_nan(wa) or p.is_nan(wb):
        return
    va = bits_to_f64(p.to_f64_bits(wa))
    vb = bits_to_f64(p.to_f64_bits(wb))
    c = p.compare(wa, wb)
    if va < vb:
        assert c.value == "lt"
    elif va > vb:
        assert c.value == "gt"
    else:
        assert c.value == "eq"


@given(st.integers(min_value=0, max_value=255),
       st.integers(min_value=0, max_value=255))
def test_posit8_add_commutes(wa, wb):
    p = PositArithmetic(8, 2)
    assert p.add(wa, wb) == p.add(wb, wa)


@given(st.integers(min_value=0, max_value=255))
def test_posit8_mul_identity(w):
    p = PositArithmetic(8, 2)
    one = p.from_i64(1)
    assert p.mul(w, one) == (w & 0xFF)


# --------------------------------------------------------------------------- #
# NaN-boxing                                                                   #
# --------------------------------------------------------------------------- #

@given(st.integers(min_value=1, max_value=MAX_HANDLE),
       st.booleans())
def test_nanbox_roundtrip(handle, tag):
    c = NaNBoxCodec(tag_sign=tag)
    bits = c.encode(handle)
    assert c.is_box(bits)
    assert c.decode(bits) == handle
    assert c.is_candidate_word(bits)


@given(finite)
def test_values_never_look_like_boxes(x):
    c = NaNBoxCodec()
    assert not c.is_box(f64_to_bits(x))
    assert not c.is_candidate_word(f64_to_bits(x))
