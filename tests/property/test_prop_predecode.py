"""Differential tests for the predecoded fast-path interpreter.

The predecode layer (``repro.machine.predecode``) must be
observationally identical to the legacy ``Machine.execute`` dispatch:
same stdout, same exit code, same dynamic instruction count, and the
same modeled cycles (bit-identical floats — the closures charge costs
in the same accumulation order).  These tests compare both dispatchers
over random compiled programs, every registry workload, and the FPVM
trap path.
"""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.arith import VanillaArithmetic
from repro.compiler import compile_source
from repro.workloads import WORKLOADS
from repro.session import Session
from repro.fpvm.runtime import FPVMConfig


def _observed(res):
    return (res.stdout, res.exit_code, res.instr_count,
            res.fp_instr_count, res.cycles, res.buckets)


def _assert_same(builder):
    fast = Session(builder, None, predecode=True).run()
    slow = Session(builder, None, predecode=False).run()
    assert _observed(fast) == _observed(slow)


# --------------------------------------------------------------------------- #
# random compiled programs                                                     #
# --------------------------------------------------------------------------- #

@st.composite
def fp_expr(draw, depth=0):
    """A random fpc double expression over variables a, b, c."""
    if depth > 3 or draw(st.booleans()):
        return draw(st.sampled_from(
            ["a", "b", "c", "0.5", "2.0", "1.5", "0.1", "3.0"]))
    op = draw(st.sampled_from(["+", "-", "*", "/"]))
    lhs = draw(fp_expr(depth=depth + 1))
    rhs = draw(fp_expr(depth=depth + 1))
    if op == "/":
        rhs = f"({rhs} * {rhs} + 0.25)"  # keep denominators positive
    fn = draw(st.sampled_from(["", "", "", "sqrt", "fabs", "-"]))
    body = f"({lhs} {op} {rhs})"
    if fn == "sqrt":
        return f"sqrt(fabs{body})"
    if fn == "-":
        return f"(-{body})"
    if fn == "fabs":
        return f"fabs{body}"
    return body


@given(fp_expr(),
       st.floats(min_value=-8, max_value=8,
                 allow_nan=False).map(lambda v: round(v, 3)),
       st.floats(min_value=-8, max_value=8,
                 allow_nan=False).map(lambda v: round(v, 3)))
@settings(max_examples=30, deadline=None)
def test_random_fp_program_dispatch_identical(expr, a, b):
    src = f"""
    long main() {{
        double a = {a!r};
        double b = {b!r};
        double c = 1.25;
        double r = {expr};
        printf("%.17g\\n", r);
        return 0;
    }}
    """
    _assert_same(lambda: compile_source(src))


@given(st.lists(st.integers(min_value=-1000, max_value=1000),
                min_size=1, max_size=10))
@settings(max_examples=25, deadline=None)
def test_random_int_program_dispatch_identical(values):
    items = ", ".join(str(v) for v in values)
    src = f"""
    long data[{len(values)}] = {{ {items} }};
    long main() {{
        long s = 0;
        for (long i = 0; i < {len(values)}; i = i + 1) {{
            if (data[i] > 0) {{ s = s + data[i] * 2; }}
            else {{ s = s - data[i]; }}
        }}
        printf("%d\\n", s);
        return s & 255;
    }}
    """
    _assert_same(lambda: compile_source(src))


# --------------------------------------------------------------------------- #
# every registry workload: native and FPVM+Vanilla                             #
# --------------------------------------------------------------------------- #

@pytest.mark.parametrize("name", sorted(WORKLOADS))
def test_workload_native_dispatch_identical(name):
    spec = WORKLOADS[name]
    _assert_same(lambda: spec.build("test"))


@pytest.mark.parametrize("name", sorted(WORKLOADS))
def test_workload_fpvm_dispatch_identical(name):
    """The trap path (closures call _fp_event) must deliver the same
    faults, demotions, and cost charges under both dispatchers."""
    spec = WORKLOADS[name]
    fast = Session(lambda: spec.build("test"), VanillaArithmetic(), predecode=True).run()
    slow = Session(lambda: spec.build("test"), VanillaArithmetic(), predecode=False).run()
    assert _observed(fast) == _observed(slow)
    assert fast.fp_traps == slow.fp_traps
    assert fast.correctness_traps == slow.correctness_traps


@pytest.mark.slow
@pytest.mark.parametrize("name", sorted(WORKLOADS))
@pytest.mark.parametrize("mode", ["trap-and-emulate", "trap-and-patch",
                                  "static"])
def test_workload_fpvm_modes_dispatch_identical_slow(name, mode):
    """The broad mode × workload sweep (excluded from tier-1)."""
    spec = WORKLOADS[name]
    fast = Session(lambda: spec.build("test"), VanillaArithmetic(), config=FPVMConfig(mode=mode), predecode=True).run()
    slow = Session(lambda: spec.build("test"), VanillaArithmetic(), config=FPVMConfig(mode=mode), predecode=False).run()
    assert _observed(fast) == _observed(slow)


def test_patch_mode_dispatch_identical():
    """Trap-and-patch rewrites text mid-run; the predecoded table must
    recompile the patched site and stay equivalent."""
    spec = WORKLOADS["lorenz"]
    fast = Session(lambda: spec.build("test"), VanillaArithmetic(), config=FPVMConfig(mode="trap-and-patch"), predecode=True).run()
    slow = Session(lambda: spec.build("test"), VanillaArithmetic(), config=FPVMConfig(mode="trap-and-patch"), predecode=False).run()
    assert _observed(fast) == _observed(slow)
