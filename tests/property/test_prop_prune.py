"""Differential tests for the liveness refinement (analysis v2).

The contract: pruning a trap is invisible.  A run of the default
(pruned) patching must be observationally identical — same stdout,
exit code, dynamic instruction count, and FP instruction count — to a
run of the conservative patching that traps at every candidate sink,
for every arithmetic.  (Modeled cycles legitimately differ: the
conservative run pays trap tax at sites the refinement proved
box-free, which is exactly the waste the refinement removes.)
"""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from conftest import RAX, RBX, XMM0, asm_program, imm, lbl, mem

from repro.analysis import analyze
from repro.compiler import compile_source
from repro.session import Session

ARITHS = ["vanilla", "mpfr:64", "posit:32:2"]
REGISTRY = ["nas_lu", "enzo"]


def _observed(res):
    return (res.stdout, res.exit_code, res.instr_count, res.fp_instr_count)


def _pair(target, arith, *, size=None):
    kw = {"size": size} if size else {}
    pruned = Session(target, arith, **kw).run()
    cons = Session(target, arith, conservative=True, **kw).run()
    return pruned, cons


# --------------------------------------------------------------------------- #
# buffer-reuse vehicles with a known ≥25% prune rate                           #
# --------------------------------------------------------------------------- #

#: an FP scratch buffer recycled as integer storage — word 0 is
#: strongly killed before its load (pruned), word 1 stays boxed (kept)
REUSE_SRC = """
double scratch[2];
long main() {
    double acc = 0.1;
    for (long i = 0; i < 8; i = i + 1) {
        acc = acc * 3.7 + 0.1;
    }
    scratch[0] = acc;
    scratch[1] = acc / 3.0;
    ((long*)scratch)[0] = 7;
    long a = ((long*)scratch)[0];
    long b = ((long*)scratch)[1];
    printf("%d %d %.17g\\n", a, b != 0, acc);
    return 0;
}
"""


def _reuse_c():
    return compile_source(REUSE_SRC)


def _reuse_asm():
    def body(a):
        a.emit("movsd", XMM0, mem(disp=lbl("d1")))
        a.emit("divsd", XMM0, mem(disp=lbl("d3")))  # inexact → boxes
        a.emit("movsd", mem(disp=lbl("slot0")), XMM0)
        a.emit("movsd", mem(disp=lbl("slot1")), XMM0)
        a.emit("mov", mem(disp=lbl("slot0")), imm(42))
        a.emit("mov", RAX, mem(disp=lbl("slot0")))   # pruned
        a.emit("mov", RBX, mem(disp=lbl("slot1")))   # kept
        a.emit("mov", RAX, imm(0))

    def data(a):
        a.double("d1", 1.0)
        a.double("d3", 3.0)
        a.quad("slot0", 0)
        a.quad("slot1", 0)

    return asm_program(body, data=data)

VEHICLES = {"reuse_c": _reuse_c, "reuse_asm": _reuse_asm}


@pytest.mark.parametrize("vehicle", sorted(VEHICLES))
def test_prune_rate_meets_bar(vehicle):
    report = analyze(VEHICLES[vehicle](), cache=False)
    assert report.prune_rate >= 0.25
    assert report.pruned_sinks


@pytest.mark.parametrize("arith", ARITHS)
@pytest.mark.parametrize("vehicle", sorted(VEHICLES))
def test_pruned_vs_conservative_identical(vehicle, arith):
    pruned, cons = _pair(VEHICLES[vehicle], arith)
    assert _observed(pruned) == _observed(cons)


def test_fast_path_fires_only_in_conservative_mode():
    """Proven box-free sites short-circuit the correctness handler —
    and only the conservative run even has traps installed there."""
    pruned, cons = _pair(VEHICLES["reuse_asm"], "mpfr:64")
    assert pruned.fpvm.stats.analysis_short_circuits == 0
    assert cons.fpvm.stats.analysis_short_circuits > 0
    # the fast path is cheaper than full correctness servicing
    assert cons.cycles > pruned.cycles


# --------------------------------------------------------------------------- #
# registry workloads                                                           #
# --------------------------------------------------------------------------- #

@pytest.mark.parametrize("arith", ARITHS)
@pytest.mark.parametrize("name", REGISTRY)
def test_registry_pruned_vs_conservative_identical(name, arith):
    pruned, cons = _pair(name, arith, size="test")
    assert _observed(pruned) == _observed(cons)


def test_enzo_prunes_spurious_sinks():
    """The paper's Enzo discussion: most installed traps never fire.
    The refinement must find a nonempty prune set on enzo."""
    from repro.workloads import WORKLOADS

    report = analyze(WORKLOADS["enzo"].build("test"), cache=False)
    assert report.pruned_sinks


# --------------------------------------------------------------------------- #
# random kill patterns                                                         #
# --------------------------------------------------------------------------- #

@given(st.lists(st.booleans(), min_size=1, max_size=4),
       st.sampled_from(ARITHS))
@settings(max_examples=15, deadline=None)
def test_random_kill_patterns_identical(kills, arith):
    """Random subsets of FP-marked words are strongly killed before
    their loads; whatever the refinement prunes, the pruned and
    conservative runs must stay bit-identical and the pruned set must
    be exactly the killed words."""
    def body(a):
        a.emit("movsd", XMM0, mem(disp=lbl("d1")))
        a.emit("divsd", XMM0, mem(disp=lbl("d3")))
        for i in range(len(kills)):
            a.emit("movsd", mem(disp=lbl(f"slot{i}")), XMM0)
        for i, killed in enumerate(kills):
            if killed:
                a.emit("mov", mem(disp=lbl(f"slot{i}")), imm(i + 1))
        for i in range(len(kills)):
            a.emit("mov", RAX, mem(disp=lbl(f"slot{i}")))
        a.emit("mov", RAX, imm(0))

    def data(a):
        a.double("d1", 1.0)
        a.double("d3", 3.0)
        for i in range(len(kills)):
            a.quad(f"slot{i}", 0)

    builder = lambda: asm_program(body, data=data)
    report = analyze(builder(), cache=False)
    assert len(report.pruned_sinks) == sum(kills)
    assert len(report.sinks) == len(kills) - sum(kills)

    pruned, cons = _pair(builder, arith)
    assert _observed(pruned) == _observed(cons)
