"""Differential tests for the tracing JIT: trace-compiled hot loops
must be observationally identical to plain interpretation.

The contract (``repro.fpvm.tracejit``): with the trace JIT enabled, a
run produces the same stdout, exit code, dynamic instruction count,
and FP instruction count as the same run with it disabled, for every
arithmetic — including under fault-injection plans whose degradations
invalidate traces mid-run and force the deopt paths.  (Modeled cycles
are summed in batches inside a trace, so the float totals may differ
in the last ulps; they are not part of the observational contract.)
"""

import pytest

from repro.faults import FaultPlan, FaultRule
from repro.fpvm.runtime import FPVMConfig
from repro.fpvm.tracejit import TraceJIT
from repro.machine.loader import load_binary
from repro.session import Session
from repro.workloads import get_workload

ARITHS = ["vanilla", "mpfr:64", "posit:32:2"]
WORKLOADS = ["lorenz", "fbench", "three_body"]


def _observed(res):
    return (res.stdout, res.exit_code, res.instr_count, res.fp_instr_count)


def _pair(name, arith, *, threshold=3, **cfg):
    """Run a workload twice — trace JIT off and on — return both."""
    off = Session(name, arith, size="test",
                  config=FPVMConfig(**cfg)).run()
    on = Session(name, arith, size="test",
                 config=FPVMConfig(trace_jit_threshold=threshold,
                                   **cfg)).run()
    return off, on


# --------------------------------------------------------------------------- #
# registry workloads × arithmetics (chain mode: FPVM handler installed)        #
# --------------------------------------------------------------------------- #

@pytest.mark.parametrize("arith", ARITHS)
@pytest.mark.parametrize("name", WORKLOADS)
def test_workload_tracejit_identical(name, arith):
    off, on = _pair(name, arith)
    assert _observed(on) == _observed(off)
    stats = on.fpvm.stats
    assert stats.trace_loops_compiled > 0
    assert stats.trace_hits > 0


def test_composes_with_trap_site_jit():
    """Both JITs enabled at once stay observationally identical."""
    off, on = _pair("lorenz", "mpfr:64", jit_threshold=2)
    assert _observed(on) == _observed(off)
    stats = on.fpvm.stats
    assert stats.trace_loops_compiled > 0
    assert stats.jit_sites_compiled > 0


# --------------------------------------------------------------------------- #
# fault plans that force the deopt / invalidation paths                        #
# --------------------------------------------------------------------------- #

@pytest.mark.parametrize("seed", [3, 11, 29])
def test_identical_under_fault_plan(seed):
    plan = FaultPlan(seed=seed, rules=(
        FaultRule(stage="emulate", probability=0.15, max_fires=None),))
    off, on = _pair("lorenz", "vanilla", faults=plan)
    assert _observed(on) == _observed(off)


def test_fault_plan_exercises_deopt():
    """An unlimited emulate-fault plan degrades instructions inside the
    traced loop: the degradation ladder must invalidate the trace and
    the in-flight iteration must deopt — with identical output."""
    plan = FaultPlan(seed=11, rules=(
        FaultRule(stage="emulate", probability=0.15, max_fires=None),))
    off, on = _pair("lorenz", "vanilla", faults=plan)
    assert _observed(on) == _observed(off)
    stats = on.fpvm.stats
    assert stats.trace_deopts > 0
    assert stats.trace_invalidations > 0


def test_zero_rule_plan_matches_no_injector():
    plan = FaultPlan(seed=7)
    off, on = _pair("lorenz", "mpfr:64", faults=plan)
    assert _observed(on) == _observed(off)
    assert on.fpvm.stats.trace_loops_compiled > 0


# --------------------------------------------------------------------------- #
# machine-only traces (opt mode: no FPVM handler, FP inlined as floats)        #
# --------------------------------------------------------------------------- #

def _native_pair(name, *, threshold=3):
    spec = get_workload(name)
    off = load_binary(spec.build("test"))
    off.run()
    on = load_binary(spec.build("test"))
    tj = TraceJIT(on, threshold)
    tj.attach()
    on.run()
    return off, on, tj


@pytest.mark.parametrize("name", WORKLOADS)
def test_machine_only_identical(name):
    off, on, tj = _native_pair(name)
    assert "".join(on.stdout) == "".join(off.stdout)
    assert on.exit_code == off.exit_code
    assert on.instr_count == off.instr_count
    assert on.fp_instr_count == off.fp_instr_count
    assert on.regs.gpr == off.regs.gpr
    assert tj.stats.trace_loops_compiled > 0
    assert tj.stats.trace_hits > 0


def test_machine_only_register_file_identical():
    """Full architectural state (GPRs, XMM lanes, flags) must match
    after a run whose hot loop executed inside compiled traces."""
    off, on, tj = _native_pair("lorenz")
    for i in range(len(off.regs.xmm)):
        assert tuple(on.regs.xmm[i]) == tuple(off.regs.xmm[i])
    for f in ("zf", "sf", "of", "cf", "pf"):
        assert getattr(on.regs, f) == getattr(off.regs, f)


def test_opt_mode_emitted_for_fp_loop():
    """A printf-free FP loop (machine-only) must get the optimizing
    emitter, not the chain fallback — that is where the speedup lives."""
    from repro.compiler import compile_source

    src = """
    long main() {
        double x = 1.5;
        double acc = 0.0;
        for (long i = 0; i < 300; i = i + 1) {
            x = x * 0.99 + 0.03;
            acc = acc + x;
        }
        printf("%.17g\\n", acc);
        return 0;
    }
    """
    off = load_binary(compile_source(src))
    off.run()
    on = load_binary(compile_source(src))
    tj = TraceJIT(on, 8)
    tj.attach()
    on.run()
    assert "".join(on.stdout) == "".join(off.stdout)
    assert on.instr_count == off.instr_count
    assert on.fp_instr_count == off.fp_instr_count
    assert tj.stats.trace_loops_compiled >= 1
    assert any(info.mode == "opt" for info in tj.traces.values())
