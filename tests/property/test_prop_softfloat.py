"""Property-based tests: the soft FPU against host-float ground truth
and exact Fraction arithmetic."""

import math
from fractions import Fraction

from hypothesis import assume, given, settings
from hypothesis import strategies as st

from repro.ieee import bits as B
from repro.ieee import exactness as X
from repro.ieee.softfloat import Flags, SoftFPU

fpu = SoftFPU()

finite = st.floats(allow_nan=False, allow_infinity=False)
nonzero_finite = finite.filter(lambda x: x != 0.0)
anyfloat = st.floats(allow_nan=True, allow_infinity=True)


def f(x: float) -> int:
    return B.f64_to_bits(x)


@given(finite, finite)
def test_add_value_matches_host(a, b):
    r, _ = fpu.add64(f(a), f(b))
    assert r == f(a + b)


@given(finite, finite)
def test_sub_value_matches_host(a, b):
    r, _ = fpu.sub64(f(a), f(b))
    assert r == f(a - b)


@given(finite, finite)
def test_mul_value_matches_host(a, b):
    r, _ = fpu.mul64(f(a), f(b))
    assert r == f(a * b)


@given(finite, nonzero_finite)
def test_div_value_matches_host(a, b):
    r, _ = fpu.div64(f(a), f(b))
    assert r == f(a / b)


@given(st.floats(min_value=0.0, allow_nan=False, allow_infinity=False))
def test_sqrt_value_matches_host(a):
    r, _ = fpu.sqrt64(f(a))
    assert r == f(math.sqrt(a))


@given(finite, finite)
@settings(max_examples=300)
def test_pe_iff_inexact_add(a, b):
    """The trap predicate: PE fires exactly when Fraction arithmetic
    says the result was rounded."""
    r, fl = fpu.add64(f(a), f(b))
    if not B.is_finite64(r):
        return  # overflow path asserts separately
    exact = Fraction(a) + Fraction(b) == Fraction(B.bits_to_f64(r))
    assert bool(fl & Flags.PE) == (not exact)


@given(finite, finite)
@settings(max_examples=300)
def test_pe_iff_inexact_mul(a, b):
    r, fl = fpu.mul64(f(a), f(b))
    if not B.is_finite64(r):
        return
    exact = Fraction(a) * Fraction(b) == Fraction(B.bits_to_f64(r))
    assert bool(fl & Flags.PE) == (not exact)


@given(finite, nonzero_finite)
@settings(max_examples=300)
def test_pe_iff_inexact_div(a, b):
    r, fl = fpu.div64(f(a), f(b))
    if not B.is_finite64(r):
        return
    exact = Fraction(a) / Fraction(b) == Fraction(B.bits_to_f64(r))
    assert bool(fl & Flags.PE) == (not exact)


@given(finite, finite)
def test_add_commutes_in_value(a, b):
    r1, fl1 = fpu.add64(f(a), f(b))
    r2, fl2 = fpu.add64(f(b), f(a))
    assert r1 == r2 and fl1 == fl2


@given(anyfloat, anyfloat)
def test_nan_operand_never_crashes_and_propagates(a, b):
    r, fl = fpu.mul64(f(a), f(b))
    if math.isnan(a) or math.isnan(b):
        assert B.is_qnan64(r)


@given(finite)
def test_ucomi_reflexive_equal(a):
    (zf, pf, cf), fl = fpu.ucomi64(f(a), f(a))
    assert (zf, pf, cf) == (1, 0, 0) and fl == 0


@given(finite, finite)
def test_ucomi_antisymmetric(a, b):
    assume(a != b)
    r1, _ = fpu.ucomi64(f(a), f(b))
    r2, _ = fpu.ucomi64(f(b), f(a))
    assert r1 != r2


@given(st.integers(min_value=-(2**63), max_value=2**63 - 1))
def test_cvt_i64_roundtrip_when_exact(i):
    r, fl = fpu.cvt_i64_to_f64(i & ((1 << 64) - 1))
    assert B.bits_to_f64(r) == float(i)
    if fl == 0:  # exact conversion must roundtrip
        back, _ = fpu.cvt_f64_to_i64(r, truncate=True)
        if back != 1 << 63 or i == -(2**63):
            signed = back - (1 << 64) if back >= 1 << 63 else back
            assert signed == i


@given(finite)
def test_roundtrip_f32_widening_exact(x):
    r32, _ = fpu.cvt_f64_to_f32(f(x))
    r64, fl = fpu.cvt_f32_to_f64(r32)
    r32b, _ = fpu.cvt_f64_to_f32(r64)
    assert r32b == r32  # narrow(widen(narrow(x))) == narrow(x)


@given(finite)
def test_exactness_decomposition_consistent(x):
    assume(x != 0.0)
    s, m, e = B.decompose64(f(x))
    assert ((-1) ** s) * m * Fraction(2) ** e == Fraction(x)
