"""Robustness laws of the fault-injection subsystem.

Two properties anchor the whole design:

* a zero-rule :class:`FaultPlan` is *bit-identical* to running without
  an injector at all — instructions, modeled cycles, and stdout all
  match, for every seed (the injector's probes must be free);
* under arbitrary injected faults the degraded run still terminates
  with vanilla-correct output — graceful degradation falls back to the
  very semantics the vanilla run used, so the printed results agree.
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.arith import VanillaArithmetic
from repro.compiler import compile_source
from repro.faults import STAGES, FaultPlan, FaultRule
from repro.fpvm.runtime import FPVMConfig
from repro.session import Session

SRC = """
long main() {
    double x = 1.0;
    double y = 0.5;
    for (long i = 0; i < 60; i = i + 1) {
        x = x / 3.0 + 1.0;
        y = y * 1.0625 + x;
    }
    printf("%.17g %.17g\\n", x, y);
    return 0;
}
"""


def _run(plan, **cfg_kwargs):
    config = FPVMConfig(faults=plan, **cfg_kwargs)
    s = Session(lambda: compile_source(SRC), VanillaArithmetic(),
                config=config)
    res = s.run()
    return s, res


_BASELINE = _run(None)[1]


rules_strategy = st.lists(
    st.builds(
        FaultRule,
        stage=st.sampled_from(STAGES),
        probability=st.sampled_from([0.1, 0.5, 1.0]),
        max_fires=st.one_of(st.none(), st.integers(1, 5)),
    ),
    min_size=1, max_size=4,
)


class TestZeroFaultBitIdentity:
    @given(seed=st.integers(0, 2**63 - 1))
    @settings(max_examples=15, deadline=None)
    def test_zero_rule_plan_is_bit_identical(self, seed):
        _, res = _run(FaultPlan(seed=seed))
        assert res.stdout == _BASELINE.stdout
        assert res.instr_count == _BASELINE.instr_count
        assert res.cycles == _BASELINE.cycles
        assert res.buckets == _BASELINE.buckets


class TestDegradedRunsTerminate:
    @given(seed=st.integers(0, 2**32), rules=rules_strategy,
           storm_threshold=st.sampled_from([0, 2, 8]))
    @settings(max_examples=25, deadline=None)
    def test_faulted_run_terminates_vanilla_correct(self, seed, rules,
                                                    storm_threshold):
        plan = FaultPlan(seed=seed, rules=tuple(rules))
        s, res = _run(plan, storm_threshold=storm_threshold)
        # terminated normally, through the degradation ladder
        assert res.exit_code == 0
        assert s.machine.halted
        # under vanilla arithmetic every degradation re-executes the
        # same IEEE semantics, so the printed output is unchanged
        # (nanbox_corrupt may destroy a live shadow value, the one
        # injection that is allowed to perturb results)
        if not any(r.stage == "nanbox_corrupt" for r in rules):
            assert res.stdout == _BASELINE.stdout

    @given(seed=st.integers(0, 2**32), rules=rules_strategy)
    @settings(max_examples=10, deadline=None)
    def test_same_plan_same_run(self, seed, rules):
        plan = FaultPlan(seed=seed, rules=tuple(rules))
        s1, r1 = _run(plan)
        s2, r2 = _run(plan)
        assert r1.stdout == r2.stdout
        assert r1.cycles == r2.cycles
        assert s1.fpvm.injector.summary() == s2.fpvm.injector.summary()


class TestJitUnderFaults:
    """Degradation always wins over the trap-site JIT: a fault (or a
    trap storm) at a patched site tears the compiled closure down and
    the interpreter path finishes the run with vanilla-correct output."""

    @given(seed=st.integers(0, 2**32), rules=rules_strategy,
           storm_threshold=st.sampled_from([0, 2, 8]))
    @settings(max_examples=20, deadline=None)
    def test_faulted_jit_run_terminates_vanilla_correct(self, seed, rules,
                                                        storm_threshold):
        plan = FaultPlan(seed=seed, rules=tuple(rules))
        s, res = _run(plan, storm_threshold=storm_threshold,
                      jit_threshold=2)
        assert res.exit_code == 0
        assert s.machine.halted
        if not any(r.stage == "nanbox_corrupt" for r in rules):
            assert res.stdout == _BASELINE.stdout

    def test_fault_at_patched_site_falls_back(self):
        """Pinned seed: the hot sites compile, then an emulate-stage
        fault fires *inside* a compiled closure — the site must be
        invalidated and the run still print the vanilla answer."""
        plan = FaultPlan(seed=5, rules=(FaultRule(stage="emulate",
                                                  probability=0.05),))
        s, res = _run(plan, jit_threshold=2)
        assert res.stdout == _BASELINE.stdout
        stats = s.fpvm.stats
        assert stats.jit_sites_compiled > 0
        assert stats.jit_invalidations >= 1

    def test_zero_rule_plan_jit_matches_no_injector(self):
        """An armed-but-empty injector must not change the JIT path
        (memos are disabled under injection; results stay identical)."""
        _, armed = _run(FaultPlan(seed=7), jit_threshold=2)
        _, plain = _run(None, jit_threshold=2)
        assert armed.stdout == plain.stdout
        assert armed.instr_count == plain.instr_count
        assert armed.fp_instr_count == plain.fp_instr_count
