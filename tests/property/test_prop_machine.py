"""Property-based tests of the CPU's integer semantics against Python
ground truth, and of the compiler's integer arithmetic against eval."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.compiler import compile_source
from repro.machine.loader import load_binary
from conftest import RAX, RBX, RCX, imm, run_program

_MASK64 = (1 << 64) - 1

u64 = st.integers(min_value=0, max_value=_MASK64)
i_small = st.integers(min_value=-(1 << 31), max_value=(1 << 31) - 1)


def _signed(v: int) -> int:
    return v - (1 << 64) if v >> 63 else v


@given(u64, u64)
@settings(max_examples=80, deadline=None)
def test_add_sub_wraparound(a, b):
    def body(asm):
        asm.emit("movabs", RAX, imm(a))
        asm.emit("movabs", RCX, imm(b))
        asm.emit("mov", RBX, RAX)
        asm.emit("add", RAX, RCX)
        asm.emit("sub", RBX, RCX)

    m = run_program(body)
    assert m.regs.get_gpr("rax") == (a + b) & _MASK64
    assert m.regs.get_gpr("rbx") == (a - b) & _MASK64


@given(u64, u64)
@settings(max_examples=80, deadline=None)
def test_logic_ops(a, b):
    def body(asm):
        asm.emit("movabs", RAX, imm(a))
        asm.emit("movabs", RCX, imm(b))
        asm.emit("mov", RBX, RAX)
        asm.emit("and", RAX, RCX)
        asm.emit("xor", RBX, RCX)

    m = run_program(body)
    assert m.regs.get_gpr("rax") == a & b
    assert m.regs.get_gpr("rbx") == a ^ b


@given(u64, st.integers(min_value=0, max_value=63))
@settings(max_examples=80, deadline=None)
def test_shifts(a, k):
    def body(asm):
        asm.emit("movabs", RAX, imm(a))
        asm.emit("mov", RBX, RAX)
        asm.emit("mov", RCX, RAX)
        asm.emit("shl", RAX, imm(k))
        asm.emit("shr", RBX, imm(k))
        asm.emit("sar", RCX, imm(k))

    m = run_program(body)
    assert m.regs.get_gpr("rax") == (a << k) & _MASK64
    assert m.regs.get_gpr("rbx") == a >> k
    assert m.regs.get_gpr("rcx") == (_signed(a) >> k) & _MASK64


@given(i_small, i_small)
@settings(max_examples=60, deadline=None)
def test_imul_truncates(a, b):
    def body(asm):
        asm.emit("movabs", RAX, imm(a & _MASK64))
        asm.emit("movabs", RCX, imm(b & _MASK64))
        asm.emit("imul", RAX, RCX)

    m = run_program(body)
    assert m.regs.get_gpr("rax") == (a * b) & _MASK64


@given(i_small, st.integers(min_value=1, max_value=(1 << 30)))
@settings(max_examples=60, deadline=None)
def test_idiv_c_semantics(a, b):
    """x64 idiv truncates toward zero (C semantics), unlike Python //."""
    def body(asm):
        asm.emit("movabs", RAX, imm(a & _MASK64))
        asm.emit("cqo")
        asm.emit("movabs", RCX, imm(b))
        asm.emit("idiv", RCX)

    m = run_program(body)
    q = int(a / b)
    r = a - q * b
    assert _signed(m.regs.get_gpr("rax")) == q
    assert _signed(m.regs.get_gpr("rdx")) == r


@given(st.lists(st.sampled_from("+-*"), min_size=1, max_size=6),
       st.lists(i_small, min_size=7, max_size=7))
@settings(max_examples=40, deadline=None)
def test_compiled_int_expression_matches_python(ops, vals):
    """Random left-associated integer expressions through the whole
    compiler+machine stack equal Python's evaluation."""
    expr = str(vals[0])
    pyexpr = str(vals[0])
    for op, v in zip(ops, vals[1:]):
        expr = f"({expr} {op} {v})"
        pyexpr = f"({pyexpr} {op} {v})"
    expected = eval(pyexpr)
    src = f"""
    long main() {{
        long r = {expr};
        printf("%d\\n", r);
        return 0;
    }}
    """
    m = load_binary(compile_source(src))
    m.run()
    got = int("".join(m.stdout))
    assert got == _signed(expected & _MASK64)
