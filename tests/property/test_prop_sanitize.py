"""Property tests for the sanitizer: on any random program the IEEE
path the program observes is bit-identical to a native run — the
dual-path shadow, the divergence checks, and the static exemptions
are all pure observers."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.analysis.ranges import analyze_ranges
from repro.compiler import compile_source
from repro.fpvm.runtime import FPVMConfig
from repro.fpvm.sanitize import SanitizeConfig
from repro.session import Session
from test_prop_system import fp_expr


def _src(expr, a, b, c):
    return f"""
    long main() {{
        double a = {a!r};
        double b = {b!r};
        double c = {c!r};
        double r = {expr};
        printf("%.17g\\n", r);
        printf("bits=%d\\n", __bits(r) & 4095);
        return 0;
    }}
    """


FLOATS = st.floats(min_value=-8, max_value=8,
                   allow_nan=False).map(lambda v: round(v, 3))
POS = st.floats(min_value=0.1, max_value=8,
                allow_nan=False).map(lambda v: round(v, 3))


@given(fp_expr(), FLOATS, FLOATS, POS,
       st.sampled_from([(True, False), (True, True), (False, False)]))
@settings(max_examples=20, deadline=None)
def test_sanitize_preserves_ieee_path(expr, a, b, c, mode):
    """Native run == sanitize run (stdout, exit code, instruction
    count) in every exemption mode."""
    exempt, aggressive = mode
    src = _src(expr, a, b, c)
    native = Session(lambda: compile_source(src), None).run()
    cfg = FPVMConfig(sanitize=SanitizeConfig(
        threshold=1e-6, precision=80,
        exempt=exempt, aggressive=aggressive))
    sess = Session(lambda: compile_source(src), ("sanitize", 80),
                   config=cfg)
    res = sess.run()
    assert res.stdout == native.stdout
    assert res.exit_code == native.exit_code
    assert res.instr_count == native.instr_count


@given(fp_expr(), FLOATS, FLOATS, POS)
@settings(max_examples=15, deadline=None)
def test_statically_exempt_sites_never_flag(expr, a, b, c):
    """The gate law on random programs: run full dual-path (exemption
    off) and require that no proven site dynamically diverges."""
    src = _src(expr, a, b, c)
    cfg = FPVMConfig(sanitize=SanitizeConfig(
        threshold=1e-6, precision=80, exempt=False))
    sess = Session(lambda: compile_source(src), ("sanitize", 80),
                   config=cfg)
    rr = analyze_ranges(sess.binary, threshold=1e-6)
    sess.run()
    flagged = set(sess.fpvm.sanitizer.flagged_sites())
    assert not (flagged & rr.proven), (
        f"statically proven sites flagged: "
        f"{sorted(hex(x) for x in flagged & rr.proven)}")
