"""§5.2 validation: FPVM + Vanilla must be bit-identical to native.

    "In order to validate the functionality of FPVM, we ran a
    selection of our codes with and without FPVM… In all of the
    cases, the results were identical, as expected, indicating that
    the core emulator operates correctly."
"""

import pytest

from repro.arith import VanillaArithmetic
from repro.harness.experiment import run_native, run_under_fpvm
from repro.workloads import WORKLOADS


@pytest.mark.parametrize("name", sorted(WORKLOADS))
def test_vanilla_identical(name):
    spec = WORKLOADS[name]
    native = run_native(lambda: spec.build("test"))
    virt = run_under_fpvm(lambda: spec.build("test"), VanillaArithmetic())
    assert virt.stdout == native.stdout
    assert virt.exit_code == native.exit_code
    # and FPVM actually did something (except the binary had no FP...)
    assert virt.fp_traps > 0


@pytest.mark.parametrize("name", ["lorenz", "three_body"])
def test_vanilla_identical_without_patching_when_no_holes_hit(name):
    """Codes that never reinterpret FP bits validate even unpatched.
    (EP/enzo genuinely need patching: EP's fabs is an andpd on a boxed
    value, enzo hashes FP bits — covered in test_analysis_end_to_end.)"""
    spec = WORKLOADS[name]
    native = run_native(lambda: spec.build("test"))
    virt = run_under_fpvm(lambda: spec.build("test"), VanillaArithmetic(),
                          patch=False)
    assert virt.stdout == native.stdout


def test_ep_fabs_bitwise_hole_requires_patching():
    """NAS EP's fabs() is an ANDPD: on a boxed value, the unpatched
    bit-clear silently no-ops (the §4.2 hole), changing the tallies."""
    spec = WORKLOADS["nas_ep"]
    native = run_native(lambda: spec.build("test"))
    unpatched = run_under_fpvm(lambda: spec.build("test"),
                               VanillaArithmetic(), patch=False)
    assert unpatched.stdout != native.stdout


@pytest.mark.parametrize("name", sorted(WORKLOADS))
def test_trap_and_patch_mode_identical(name):
    spec = WORKLOADS[name]
    native = run_native(lambda: spec.build("test"))
    virt = run_under_fpvm(lambda: spec.build("test"), VanillaArithmetic(),
                          mode="trap-and-patch")
    assert virt.stdout == native.stdout
    # patching replaced repeat faults with inline checks
    if virt.fpvm.stats.patch_sites_installed:
        assert virt.fp_traps <= native.fp_instr_count


def test_box_exact_results_ablation_identical():
    """The demote-exact-results ablation must not change outputs."""
    spec = WORKLOADS["three_body"]
    native = run_native(lambda: spec.build("test"))
    virt = run_under_fpvm(lambda: spec.build("test"), VanillaArithmetic(),
                          box_exact_results=False)
    assert virt.stdout == native.stdout
    # it does reduce shadow pressure
    full = run_under_fpvm(lambda: spec.build("test"), VanillaArithmetic())
    assert virt.fpvm.emulator.boxes_created < \
        full.fpvm.emulator.boxes_created
