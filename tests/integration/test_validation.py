"""§5.2 validation: FPVM + Vanilla must be bit-identical to native.

    "In order to validate the functionality of FPVM, we ran a
    selection of our codes with and without FPVM… In all of the
    cases, the results were identical, as expected, indicating that
    the core emulator operates correctly."
"""

import pytest

from repro.arith import VanillaArithmetic
from repro.workloads import WORKLOADS
from repro.session import Session
from repro.fpvm.runtime import FPVMConfig


@pytest.mark.parametrize("name", sorted(WORKLOADS))
def test_vanilla_identical(name):
    spec = WORKLOADS[name]
    native = Session(lambda: spec.build("test"), None).run()
    virt = Session(lambda: spec.build("test"), VanillaArithmetic()).run()
    assert virt.stdout == native.stdout
    assert virt.exit_code == native.exit_code
    # and FPVM actually did something (except the binary had no FP...)
    assert virt.fp_traps > 0


@pytest.mark.parametrize("name", ["lorenz", "three_body"])
def test_vanilla_identical_without_patching_when_no_holes_hit(name):
    """Codes that never reinterpret FP bits validate even unpatched.
    (EP/enzo genuinely need patching: EP's fabs is an andpd on a boxed
    value, enzo hashes FP bits — covered in test_analysis_end_to_end.)"""
    spec = WORKLOADS[name]
    native = Session(lambda: spec.build("test"), None).run()
    virt = Session(lambda: spec.build("test"), VanillaArithmetic(), patch=False).run()
    assert virt.stdout == native.stdout


def test_ep_fabs_bitwise_hole_requires_patching():
    """NAS EP's fabs() is an ANDPD: on a boxed value, the unpatched
    bit-clear silently no-ops (the §4.2 hole), changing the tallies."""
    spec = WORKLOADS["nas_ep"]
    native = Session(lambda: spec.build("test"), None).run()
    unpatched = Session(lambda: spec.build("test"), VanillaArithmetic(), patch=False).run()
    assert unpatched.stdout != native.stdout


@pytest.mark.parametrize("name", sorted(WORKLOADS))
def test_trap_and_patch_mode_identical(name):
    spec = WORKLOADS[name]
    native = Session(lambda: spec.build("test"), None).run()
    virt = Session(lambda: spec.build("test"), VanillaArithmetic(), config=FPVMConfig(mode="trap-and-patch")).run()
    assert virt.stdout == native.stdout
    # patching replaced repeat faults with inline checks
    if virt.fpvm.stats.patch_sites_installed:
        assert virt.fp_traps <= native.fp_instr_count


def test_box_exact_results_ablation_identical():
    """The demote-exact-results ablation must not change outputs."""
    spec = WORKLOADS["three_body"]
    native = Session(lambda: spec.build("test"), None).run()
    virt = Session(lambda: spec.build("test"), VanillaArithmetic(), config=FPVMConfig(box_exact_results=False)).run()
    assert virt.stdout == native.stdout
    # it does reduce shadow pressure
    full = Session(lambda: spec.build("test"), VanillaArithmetic()).run()
    assert virt.fpvm.emulator.boxes_created < \
        full.fpvm.emulator.boxes_created
