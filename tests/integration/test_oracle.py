"""Dynamic soundness oracle vs. the static analysis (analysis v2).

The acceptance bar for the refinement: an instrumented unpatched run
must never observe a live NaN-box being consumed at a site the static
analysis left unpatched — on *every* registry workload, under a boxing
arithmetic.  The oracle is also exercised negatively (a doctored
report must produce violations) and for predecode/legacy parity.
"""

import pytest

from repro.analysis import analyze, clear_cache
from repro.analysis.oracle import SoundnessOracle, validate
from repro.compiler import compile_source
from repro.session import Session
from repro.workloads import WORKLOADS

#: a program whose FP results land in memory that is then read back
#: as raw integers — under a boxing arith the loads consume live boxes
BOXING_SRC = """
double vals[4];
long main() {
    double acc = 0.1;
    for (long i = 0; i < 4; i = i + 1) {
        acc = acc * 3.7 + 0.1;
        vals[i] = acc / 3.0;
    }
    long bits = 0;
    for (long i = 0; i < 4; i = i + 1) {
        bits = bits ^ ((long*)vals)[i];
    }
    printf("%d %.17g\n", bits != 0, acc);
    return 0;
}
"""


def _builder():
    return compile_source(BOXING_SRC)


class TestRegistrySoundness:
    @pytest.mark.parametrize("name", sorted(WORKLOADS))
    def test_no_soundness_violations(self, name):
        res = validate(name, "mpfr:64", size="test")
        assert res.ok, "\n".join(res.violations)

    def test_spurious_rate_bounds(self):
        res = validate("nas_lu", "mpfr:64", size="test")
        assert 0.0 <= res.spurious_trap_rate <= 1.0
        assert res.patched_site_count >= len(res.spurious_sites)


class TestOracleObservations:
    def test_unpatched_boxing_run_observes_sinks(self):
        sess = Session(_builder, "mpfr:64", patch=False, label="oracle")
        oracle = SoundnessOracle(sess.fpvm)
        sess.machine.set_oracle(oracle)
        try:
            sess.run()
        except Exception:
            pass
        kinds = {k for k, _ in oracle.observations}
        assert "sink" in kinds
        # every observed sink is statically patched
        report = analyze(sess.machine.binary, cache=False)
        for (kind, addr) in oracle.observations:
            if kind == "sink":
                assert addr in report.sinks

    def test_validate_builder_target_is_sound(self):
        res = validate(_builder, "mpfr:64")
        assert res.ok, "\n".join(res.violations)
        assert res.observed_site_count > 0

    def test_predecode_and_legacy_observations_agree(self):
        def run(predecode):
            sess = Session(_builder, "mpfr:64", patch=False,
                           predecode=predecode, label="oracle")
            oracle = SoundnessOracle(sess.fpvm)
            sess.machine.set_oracle(oracle)
            try:
                sess.run()
            except Exception:
                pass
            return {key: obs.count
                    for key, obs in oracle.observations.items()}

        assert run(True) == run(False)

    def test_demote_on_observe_tracks_patched_run(self):
        """Demote-on-observe makes the instrumented unpatched run
        architecturally identical to the patched run: same stdout,
        exit code, and retired instruction count (cycles differ — the
        patched run pays the correctness-handler tax, probes are
        free)."""
        oracle_sess = Session(_builder, "mpfr:64", patch=False,
                              label="oracle")
        oracle_sess.machine.set_oracle(SoundnessOracle(oracle_sess.fpvm))
        a = oracle_sess.run()

        b = Session(_builder, "mpfr:64", label="patched").run()
        assert (a.stdout, a.exit_code, a.instr_count) == \
            (b.stdout, b.exit_code, b.instr_count)


class TestViolationDetection:
    def test_doctored_report_produces_violations(self, monkeypatch):
        """Hand-prune a dynamically-hot sink out of the report: the
        cross-check must flag it rather than silently agree."""
        import repro.analysis as analysis_mod

        real = analyze(compile_source(BOXING_SRC), cache=False)
        assert real.sinks, "probe program must have at least one sink"
        doctored_out = real.sinks  # every sink "pruned"

        def doctored_analyze(binary, **kw):
            rep = analyze(binary, cache=False)
            rep.pruned_sinks = list(doctored_out)
            rep.sinks = []
            return rep

        clear_cache()
        monkeypatch.setattr(analysis_mod, "analyze", doctored_analyze)
        res = validate(_builder, "mpfr:64")
        assert not res.ok
        assert any("PRUNED" in v for v in res.violations)

    def test_unclassified_sink_is_flagged(self, monkeypatch):
        """A sink missing entirely (not even pruned) is also caught."""
        import repro.analysis as analysis_mod

        def doctored_analyze(binary, **kw):
            rep = analyze(binary, cache=False)
            rep.sinks = []
            return rep

        clear_cache()
        monkeypatch.setattr(analysis_mod, "analyze", doctored_analyze)
        res = validate(_builder, "mpfr:64")
        assert not res.ok
        assert any("never classified" in v for v in res.violations)
