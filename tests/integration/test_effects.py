"""§5.4 effects: alternative arithmetic visibly changes chaotic
dynamics while leaving well-conditioned results stable."""

import re

import pytest

from repro.arith import BigFloatArithmetic, PositArithmetic, VanillaArithmetic
from repro.harness.figures import fig13_lorenz
from repro.workloads import WORKLOADS
from repro.session import Session


def _final_xyz(stdout: str):
    m = re.search(r"final x=(\S+) y=(\S+) z=(\S+)", stdout)
    return tuple(float(g) for g in m.groups())


class TestLorenzFig13:
    def test_trajectories(self):
        out = fig13_lorenz(size="test")
        assert out["vanilla_identical"]
        assert out["mpfr_diverged"]

    def test_divergence_grows_with_steps(self):
        """Chaos: the IEEE/MPFR trajectory gap grows with time."""
        spec = WORKLOADS["lorenz"]

        def gap(size):
            nat = Session(lambda: spec.build(size), None).run()
            mp = Session(lambda: spec.build(size), BigFloatArithmetic(200)).run()
            a, b = _final_xyz(nat.stdout), _final_xyz(mp.stdout)
            return sum((x - y) ** 2 for x, y in zip(a, b)) ** 0.5

        assert gap("bench") > gap("test") >= 0  # 400 steps vs 100 steps


class TestThreeBody:
    def test_posit_and_mpfr_diverge_from_ieee(self):
        spec = WORKLOADS["three_body"]
        nat = Session(lambda: spec.build("test"), None).run()
        mp = Session(lambda: spec.build("test"), BigFloatArithmetic(200)).run()
        ps = Session(lambda: spec.build("test"), PositArithmetic(32)).run()
        assert mp.stdout != nat.stdout
        assert ps.stdout != nat.stdout
        assert mp.stdout != ps.stdout

    def test_mpfr_conserves_energy_at_least_as_well(self):
        spec = WORKLOADS["three_body"]
        nat = Session(lambda: spec.build("test"), None).run()
        mp = Session(lambda: spec.build("test"), BigFloatArithmetic(200)).run()

        def drift(s):
            return abs(float(re.search(r"drift=(\S+)", s).group(1)))

        # 200-bit arithmetic shouldn't make integration drift *worse*
        # by more than the integrator's own truncation error scale
        assert drift(mp.stdout) < 10 * drift(nat.stdout) + 1e-6


class TestWellConditioned:
    def test_fbench_focal_length_stable_under_mpfr(self):
        """A well-conditioned optical design: higher precision moves
        only the last digits of the focal distance."""
        spec = WORKLOADS["fbench"]
        nat = Session(lambda: spec.build("test"), None).run()
        mp = Session(lambda: spec.build("test"), BigFloatArithmetic(200)).run()

        def focal(s):
            return float(re.search(r"marginal focal=(\S+)", s).group(1))

        assert focal(mp.stdout) == pytest.approx(focal(nat.stdout),
                                                 rel=1e-9)

    def test_lu_residual_improves_with_precision(self):
        spec = WORKLOADS["nas_lu"]
        nat = Session(lambda: spec.build("test"), None).run()
        mp = Session(lambda: spec.build("test"), BigFloatArithmetic(200)).run()

        def resid(s):
            return float(re.search(r"resid=(\S+)", s).group(1))

        assert resid(mp.stdout) <= resid(nat.stdout) + 1e-15


class TestPrecisionSweep:
    def test_higher_precision_converges(self):
        """1/3 summed repeatedly: increasing MPFR precision must give
        results converging toward the exact value."""
        from repro.compiler import compile_source

        src = """
        long main() {
            double s = 0.0;
            for (long i = 0; i < 30; i = i + 1) { s = s + 1.0 / 3.0; }
            printf("%.17g\\n", s);
            return 0;
        }
        """
        exact = 10.0
        errs = []
        for prec in (24, 60, 120):
            r = Session(lambda: compile_source(src), BigFloatArithmetic(prec)).run()
            errs.append(abs(float(r.stdout) - exact))
        assert errs[0] >= errs[1] >= errs[2]
        assert errs[2] < 1e-14
