"""End-to-end static analysis tests: the §4.2 correctness holes are
real without patching and closed with it."""

import pytest

from repro.analysis import analyze_and_patch
from repro.arith import BigFloatArithmetic, VanillaArithmetic
from repro.compiler import compile_source
from repro.fpvm import FPVM
from repro.machine.loader import load_binary
from repro.workloads import WORKLOADS
from repro.session import Session

#: a program whose output depends on reinterpreting double bits as ints
BITS_PROGRAM = """
double acc = 0.0;
long main() {
    double x = 1.0;
    for (long i = 0; i < 6; i = i + 1) {
        x = x / 3.0 + 0.25;       // rounds: boxed under FPVM
    }
    long hi = __bits(x) >> 32;    // Fig. 6: int load of FP-stored slot
    double y = -x;                 // xorpd on a (boxed) value
    double z = fabs(y);            // andpd
    acc = z + (double)(hi & 255);
    printf("acc=%.17g hi=%d\\n", acc, hi & 65535);
    return 0;
}
"""


def test_unpatched_fpvm_corrupts_bits_output():
    """Without static patching the program reads NaN-box bits — its
    integer output differs from native (the failure FPVM's static
    analysis exists to prevent)."""
    native = Session(lambda: compile_source(BITS_PROGRAM), None).run()
    virt = Session(lambda: compile_source(BITS_PROGRAM), VanillaArithmetic(), patch=False).run()
    assert virt.stdout != native.stdout


def test_patched_fpvm_matches_native():
    native = Session(lambda: compile_source(BITS_PROGRAM), None).run()
    virt = Session(lambda: compile_source(BITS_PROGRAM), VanillaArithmetic(), patch=True).run()
    assert virt.stdout == native.stdout
    assert virt.correctness_traps > 0
    assert virt.fpvm.stats.correctness_demotions > 0


def test_patched_binary_runs_unchanged_without_fpvm():
    """Patches must be transparent when FPVM is not installed."""
    binary = compile_source(BITS_PROGRAM)
    report = analyze_and_patch(binary)
    assert report.patch_count > 0
    native_plain = Session(lambda: compile_source(BITS_PROGRAM), None).run()
    m = load_binary(binary)
    m.run()
    assert "".join(m.stdout) == native_plain.stdout
    assert m.correctness_trap_count > 0  # traps taken, all no-ops


def test_enzo_needs_patching():
    """enzo's in-loop state hashing makes it the paper's showcase for
    correctness traps: unpatched output is corrupted."""
    spec = WORKLOADS["enzo"]
    native = Session(lambda: spec.build("test"), None).run()
    unpatched = Session(lambda: spec.build("test"), VanillaArithmetic(), patch=False).run()
    patched = Session(lambda: spec.build("test"), VanillaArithmetic(), patch=True).run()
    assert unpatched.stdout != native.stdout
    assert patched.stdout == native.stdout


def test_soundness_gprs_never_hold_live_boxes():
    """The package-level soundness claim: in a patched run, after every
    instruction no GPR contains a live NaN-box."""
    binary = compile_source(BITS_PROGRAM)
    analyze_and_patch(binary)
    m = load_binary(binary)
    fpvm = FPVM(VanillaArithmetic())
    fpvm.install(m)

    violations = []
    orig_execute = m.execute

    def checked_execute(ins):
        orig_execute(ins)
        for name, bits in m.regs.gpr.items():
            if fpvm.emulator.is_live_box(bits):
                violations.append((hex(ins.addr), ins.mnemonic, name))

    m.execute = checked_execute
    m.run()
    assert violations == []


def test_mpfr_bits_hash_is_of_demoted_double():
    """Under MPFR the __bits() sink must observe the *demoted* double
    of the 120-bit shadow value — predictable from the bigfloat engine
    directly — never NaN-box bits."""
    from repro.arith.bigfloat import BigFloatContext
    from repro.ieee.bits import f64_to_bits

    ctx = BigFloatContext(120)
    x = ctx.from_int(1)
    three = ctx.from_int(3)
    quarter = ctx.from_float(0.25)
    for _ in range(6):
        x = ctx.add(ctx.div(x, three), quarter)
    expect_hi = (f64_to_bits(x.to_float()) >> 32) & 65535

    virt = Session(lambda: compile_source(BITS_PROGRAM), BigFloatArithmetic(120), patch=True).run()
    got_hi = int(virt.stdout.split("hi=")[1])
    assert got_hi == expect_hi


def test_analysis_of_prepatched_binary_is_stable():
    """Analyzing and patching twice must be idempotent."""
    binary = compile_source(BITS_PROGRAM)
    r1 = analyze_and_patch(binary)
    r2 = analyze_and_patch(binary)  # sees fpvm_trap instructions
    assert r2.patch_count <= r1.patch_count + 1
    m = load_binary(binary)
    fpvm = FPVM(VanillaArithmetic())
    fpvm.install(m)
    m.run()
    native = Session(lambda: compile_source(BITS_PROGRAM), None).run()
    assert "".join(m.stdout) == native.stdout
