"""Interprocedural analysis + runtime: pointers into caller frames and
global arrays crossing function boundaries (the paper's million-
instruction applications are nothing but this)."""

from repro.analysis import analyze
from repro.arith import BigFloatArithmetic, VanillaArithmetic
from repro.compiler import compile_source
from repro.session import Session

POINTER_SRC = """
double work[6];
long counts[6];

void fill(double* dst, long n, double seed) {
    for (long i = 0; i < n; i = i + 1) {
        dst[i] = seed / (double)(i + 1);
    }
}

double total(double* src, long n) {
    double s = 0.0;
    for (long i = 0; i < n; i = i + 1) { s = s + src[i]; }
    return s;
}

long main() {
    fill(work, 6, 1.0);
    for (long i = 0; i < 6; i = i + 1) { counts[i] = i * i; }
    long csum = 0;
    for (long i = 0; i < 6; i = i + 1) { csum = csum + counts[i]; }
    printf("%.17g %d\\n", total(work, 6), csum);
    return 0;
}
"""


def test_pointer_args_validate_under_fpvm():
    native = Session(lambda: compile_source(POINTER_SRC), None).run()
    virt = Session(lambda: compile_source(POINTER_SRC), VanillaArithmetic()).run()
    assert virt.stdout == native.stdout


def test_vsa_tracks_fp_through_callee_pointer():
    """`fill` writes doubles through its pointer parameter; the VSA
    must mark `work` FP-written (via the call-edge argument flow) and
    must NOT flag the loads of the separate integer array."""
    report = analyze(compile_source(POINTER_SRC))
    assert report.fp_store_sites > 0
    # csum's loads of counts[] stay clean (identical alocs would make
    # all six loads sinks — allow at most boundary bleed)
    assert len(report.sinks) <= 2


STACK_ARRAY_SRC = """
void triple(double* p, long n) {
    for (long i = 0; i < n; i = i + 1) { p[i] = p[i] * 3.0; }
}

long main() {
    double local[4];
    for (long i = 0; i < 4; i = i + 1) { local[i] = 0.1 * (double)i; }
    triple(local, 4);
    double s = 0.0;
    for (long i = 0; i < 4; i = i + 1) { s = s + local[i]; }
    printf("%.17g\\n", s);
    return 0;
}
"""


def test_callee_writes_callers_stack_array():
    """A pointer to a *stack* array crosses the call: the callee's FP
    stores land in the caller's frame region and everything still
    validates (and under MPFR, produces a real number)."""
    native = Session(lambda: compile_source(STACK_ARRAY_SRC), None).run()
    virt = Session(lambda: compile_source(STACK_ARRAY_SRC), VanillaArithmetic()).run()
    assert virt.stdout == native.stdout
    mp = Session(lambda: compile_source(STACK_ARRAY_SRC), BigFloatArithmetic(200)).run()
    assert "nan" not in mp.stdout
    assert abs(float(mp.stdout) - float(native.stdout)) < 1e-12


RECURSION_SRC = """
double power(double base, long n) {
    if (n == 0) { return 1.0; }
    double half = power(base, n / 2);
    double sq = half * half;
    if (n % 2 == 1) { return sq * base; }
    return sq;
}

long main() {
    printf("%.17g\\n", power(1.0000001, 100));
    return 0;
}
"""


def test_recursive_fp_functions():
    native = Session(lambda: compile_source(RECURSION_SRC), None).run()
    virt = Session(lambda: compile_source(RECURSION_SRC), VanillaArithmetic()).run()
    assert virt.stdout == native.stdout
    mp = Session(lambda: compile_source(RECURSION_SRC), BigFloatArithmetic(200)).run()
    # (1+1e-7)^100 ~ 1.00001; MPFR's answer differs only in far digits
    assert abs(float(mp.stdout) - float(native.stdout)) < 1e-12
