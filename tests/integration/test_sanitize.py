"""Integration tests for the NSan-mode sanitizer: true positives on
the seeded numbugs workloads, true negatives on the real benchmarks,
the static-exemption soundness gate, bit-identity of the IEEE path,
and the ``repro sanitize`` CLI."""

import json

import pytest

from repro.__main__ import main
from repro.analysis.ranges import (autotune_precision,
                                   validate_sanitize_exemptions)
from repro.fpvm.runtime import FPVMConfig
from repro.fpvm.sanitize import SanitizeConfig
from repro.session import Session
from repro.workloads import numbugs
from repro.workloads.numbugs import SEEDED_BUGS

THRESH = 1e-6


def sanitize_session(builder, *, exempt=True, aggressive=False,
                     threshold=THRESH, precision=200):
    cfg = FPVMConfig(sanitize=SanitizeConfig(
        threshold=threshold, precision=precision,
        exempt=exempt, aggressive=aggressive))
    return Session(builder, ("sanitize", precision), config=cfg)


# --------------------------------------------------------------------------- #
# true positives: every seeded bug is flagged with correct provenance         #
# --------------------------------------------------------------------------- #

@pytest.mark.parametrize("name", sorted(SEEDED_BUGS))
def test_seeded_bug_flagged_with_provenance(name):
    expected_mnemonic, build = SEEDED_BUGS[name]
    sess = sanitize_session(lambda: build("test"))
    sess.run()
    san = sess.fpvm.sanitizer
    flagged = san.flagged_sites()
    assert flagged, f"{name}: seeded bug not flagged"
    mnemonics = {rec.mnemonic for rec in flagged.values()}
    assert expected_mnemonic in mnemonics
    # provenance: divergence magnitude and witness values recorded
    for rec in flagged.values():
        assert rec.max_rel > THRESH
        assert rec.flags > 0 and rec.checks >= rec.flags
        assert rec.example_ieee != rec.example_shadow


def test_divergence_table_sorted_and_serializable():
    _, build = SEEDED_BUGS["numbugs_sum"]
    sess = sanitize_session(lambda: build("test"))
    sess.run()
    table = sess.fpvm.sanitizer.divergence_table()
    assert table
    flags = [rec.flags for rec in table]
    assert flags == sorted(flags, reverse=True)
    doc = table[0].to_dict()
    assert doc["mnemonic"] and doc["max_rel"] > THRESH


def test_kahan_value_accurate_naive_wrong():
    """The printed Kahan sum is accurate even though its accumulator
    diverges (the compensation lives outside the per-op check); the
    naive sum is visibly wrong."""
    sess = sanitize_session(lambda: numbugs.build_sum("test"))
    res = sess.run()
    vals = {}
    for tok in res.stdout.split():
        key, _, num = tok.partition("=")
        vals[key.strip()] = float(num)
    true_sum = sum(0.001 + 0.0000001 * i for i in range(100))
    assert abs(vals["kahan"] - true_sum) / true_sum < 1e-9
    assert abs(vals["naive"] - true_sum) / true_sum > 1e-3


# --------------------------------------------------------------------------- #
# true negatives: numerically healthy workloads stay clean                    #
# --------------------------------------------------------------------------- #

@pytest.mark.parametrize("wl", ["lorenz", "fbench"])
def test_clean_workload_not_flagged(wl):
    cfg = FPVMConfig(sanitize=SanitizeConfig(threshold=THRESH,
                                             precision=200))
    sess = Session(wl, ("sanitize", 200), size="test", config=cfg)
    sess.run()
    san = sess.fpvm.sanitizer
    assert san.flagged_sites() == {}
    assert san.stats.sanitize_checks > 0


# --------------------------------------------------------------------------- #
# soundness gate: no statically-exempt site may dynamically diverge           #
# --------------------------------------------------------------------------- #

@pytest.mark.parametrize("name", sorted(SEEDED_BUGS) + ["lorenz"])
def test_exemption_gate_holds(name):
    val = validate_sanitize_exemptions(name, size="test",
                                       threshold=THRESH)
    assert val.ok, val.summary()
    assert list(val.violations) == []
    assert val.checkable_count > 0


def test_ranges_pass_exempts_nonzero_fraction():
    """Across the seeded workloads the static pass must prove at
    least one site divergence-free (the ISSUE acceptance bar)."""
    proven = 0
    for name, (_, build) in SEEDED_BUGS.items():
        sess = sanitize_session(lambda b=build: b("test"))
        sess.run()
        assert sess.range_report is not None
        proven += len(sess.range_report.proven)
    assert proven > 0


# --------------------------------------------------------------------------- #
# bit-identity: the IEEE path the program sees is untouched                   #
# --------------------------------------------------------------------------- #

@pytest.mark.parametrize("mode", ["no-exempt", "exact", "aggressive"])
@pytest.mark.parametrize("name", sorted(SEEDED_BUGS))
def test_sanitize_run_bit_identical_to_native(name, mode):
    _, build = SEEDED_BUGS[name]
    native = Session(lambda: build("test"), None).run()
    sess = sanitize_session(lambda: build("test"),
                            exempt=mode != "no-exempt",
                            aggressive=mode == "aggressive")
    res = sess.run()
    assert res.stdout == native.stdout
    assert res.exit_code == native.exit_code
    assert res.instr_count == native.instr_count


def test_aggressive_exemption_reduces_checks():
    _, build = SEEDED_BUGS["numbugs_var"]
    full = sanitize_session(lambda: build("test"), exempt=False)
    full_res = full.run()
    agg = sanitize_session(lambda: build("test"), aggressive=True)
    agg_res = agg.run()
    assert agg_res.stdout == full_res.stdout
    assert agg.fpvm.stats.sanitize_checks < full.fpvm.stats.sanitize_checks
    assert agg.fpvm.stats.sanitize_exempt_execs > 0
    # the seeded bug survives exemption in the var workload
    assert agg.fpvm.sanitizer.flagged_sites()


# --------------------------------------------------------------------------- #
# precision autotune                                                           #
# --------------------------------------------------------------------------- #

def test_autotune_walks_down_until_verdict_changes():
    res = autotune_precision(lambda: numbugs.build_cancel("test"),
                             threshold=THRESH,
                             ladder=(200, 64, 40))
    assert res.reference_precision == 200
    assert res.minimal_precision in (200, 64, 40)
    assert res.reference_flagged  # the seeded bug flags at reference
    assert res.steps
    for bits, n_flagged, _stable in res.steps:
        assert bits in (200, 64, 40)
        assert n_flagged >= 0
    # the first (reference) step is stable by definition
    assert res.steps[0][2] is True


# --------------------------------------------------------------------------- #
# CLI                                                                          #
# --------------------------------------------------------------------------- #

def test_cli_flags_seeded_bug(capsys):
    rc = main(["sanitize", "--workload", "numbugs_cancel",
               "--size", "test"])
    assert rc == 1
    err = capsys.readouterr().err
    assert "subsd" in err
    assert "static proofs" in err


def test_cli_clean_workload_exits_zero(capsys):
    rc = main(["sanitize", "--workload", "lorenz", "--size", "test"])
    assert rc == 0
    err = capsys.readouterr().err
    assert "divergence flags   : 0" in err
    assert "no divergence above threshold" in err


def test_cli_json_document(capsys):
    rc = main(["sanitize", "--workload", "numbugs_var",
               "--size", "test", "--json"])
    assert rc == 1
    doc = json.loads(capsys.readouterr().out)
    assert doc["guest_exit_code"] == 0
    assert doc["flags"] > 0
    assert doc["sites"]
    assert doc["ranges"]["checkable"] > 0
    assert doc["sites"][0]["mnemonic"] == "subsd"


def test_cli_registry_gate(capsys):
    rc = main(["sanitize", "--registry", "--size", "test",
               "--only", "numbugs_cancel,lorenz"])
    assert rc == 0
    out = capsys.readouterr().out
    assert out.count("OK") == 2
    assert "VIOLATION" not in out
