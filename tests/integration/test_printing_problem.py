"""The §2 "printing problem" end-to-end: printf sees signaling NaNs
unless FPVM hijacks it; all C conversion specifiers work through the
hijack; full-precision shadow rendering is available."""

from repro.arith import BigFloatArithmetic, VanillaArithmetic
from repro.compiler import compile_source
from repro.fpvm import FPVM
from repro.machine.loader import load_binary
from repro.session import Session
from repro.fpvm.runtime import FPVMConfig

SRC = """
long main() {
    double x = 1.0;
    for (long i = 0; i < 6; i = i + 1) { x = x / 3.0 + 1.0; }
    printf("f=%f e=%e g=%g wide=%12.4f\\n", x, x, x, x);
    printf("pct=%d%% s=%s c=%c\\n", 99, "ok", 33);
    return 0;
}
"""


def test_all_specifiers_match_native():
    native = Session(lambda: compile_source(SRC), None).run()
    virt = Session(lambda: compile_source(SRC), VanillaArithmetic()).run()
    assert virt.stdout == native.stdout
    assert "e=" in native.stdout and "%" in native.stdout


def test_without_hijack_prints_nan():
    """Bypass the output wrapper: the box prints as nan — exactly the
    paper's motivating failure."""
    binary = compile_source(SRC)
    m = load_binary(binary)
    fpvm = FPVM(VanillaArithmetic())
    fpvm.install(m)
    addr = binary.imports["printf"]
    m.externs[addr] = fpvm._saved_externs[addr]  # undo the hijack
    m.run()
    assert "nan" in "".join(m.stdout)


def test_full_precision_shadow_printing():
    """printf_shadow_digits renders the shadow value itself ("promote
    %lf"), exposing digits a double cannot carry."""
    src = """
    long main() {
        double third = 1.0 / 3.0;
        printf("%f\\n", third);
        return 0;
    }
    """
    r = Session(lambda: compile_source(src), BigFloatArithmetic(200), config=FPVMConfig(printf_shadow_digits=40)).run()
    line = r.stdout.strip()
    assert line.startswith("3.333333333333333333333333333333333333333")
    assert "e-01" in line


def test_demoted_printing_matches_double_rendering():
    """Default policy: demote, then format as a double — MPFR's extra
    digits are invisible through %.17g (they live in the shadow)."""
    src = """
    long main() {
        double third = 1.0 / 3.0;
        printf("%.17g\\n", third);
        return 0;
    }
    """
    native = Session(lambda: compile_source(src), None).run()
    mp = Session(lambda: compile_source(src), BigFloatArithmetic(200)).run()
    assert mp.stdout == native.stdout
