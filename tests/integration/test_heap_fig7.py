"""Fig. 7: double→int reinterpretation through heap indirection.

The paper's second motivating example stores a double into a malloc'd
struct field and reads it back through an int pointer.  Our VSA
summarizes each allocation site as one a-loc, so the int load of the
double field is a sink and the patched binary stays correct.
"""

from repro.analysis import analyze
from repro.arith import VanillaArithmetic
from repro.compiler import compile_source
from repro.session import Session
from repro.fpvm.runtime import FPVMConfig

# struct A { long i; double d; } laid out by hand on the heap:
# slot 0 = i, slot 1 = d  (8 bytes each, as in Fig. 7)
FIG7_SRC = """
long main() {
    long* pi = (long*)malloc(16);
    double* pd = (double*)(pi + 1);
    double fp = 1.0;
    for (long k = 0; k < 5; k = k + 1) { fp = fp / 3.0 + 0.5; }
    pd[0] = fp;              // ptr->d = fp   (FP store to heap)
    pi[0] = 0;               // ptr->i = 0    (int store, same object)
    long bits = pi[1];       // *(int*)&ptr->d  (the Fig. 7 load)
    printf("low=%d fp=%.17g\\n", bits & 4095, fp);
    free(pi);
    return 0;
}
"""


def test_vsa_finds_heap_sink():
    report = analyze(compile_source(FIG7_SRC))
    assert len(report.sinks) >= 1  # the pi[1] load of the double field


def test_unpatched_corrupts_patched_matches():
    native = Session(lambda: compile_source(FIG7_SRC), None).run()
    broken = Session(lambda: compile_source(FIG7_SRC), VanillaArithmetic(), patch=False).run()
    fixed = Session(lambda: compile_source(FIG7_SRC), VanillaArithmetic(), patch=True).run()
    assert broken.stdout != native.stdout  # box bits leaked as ints
    assert fixed.stdout == native.stdout
    assert fixed.fpvm.stats.correctness_demotions >= 1


def test_heap_boxes_survive_gc():
    """Boxes stored in live heap objects are GC roots via the
    conservative heap scan."""
    res = Session(lambda: compile_source(FIG7_SRC), VanillaArithmetic(), config=FPVMConfig(gc_epoch_cycles=50_000)).run()
    assert res.stdout  # ran to completion with frequent GC
    assert len(res.fpvm.gc.passes) >= 1
