"""End-to-end FPVM coverage for the packed-double path ("the emulator
handles vectors", §4.3) and the movq bit-transfer hole."""

from repro.analysis import analyze_and_patch
from repro.arith import BigFloatArithmetic, VanillaArithmetic
from repro.fpvm import FPVM
from repro.ieee.bits import bits_to_f64, f64_to_bits
from repro.machine.loader import load_binary
from conftest import RAX, RBX, XMM0, XMM1, asm_program, imm, lbl, mem


def fp_data(pairs):
    def data(a):
        for name, val in pairs:
            if isinstance(val, list):
                a.double(name, val)
            else:
                a.double(name, val)
    return data


def build_packed():
    """Packed loop: v = v/3 + c elementwise on both lanes."""
    def body(a):
        a.emit("movapd", XMM0, mem(disp=lbl("v"), size=16))
        a.emit("mov", RBX, imm(6))
        a.label("top")
        a.emit("divpd", XMM0, mem(disp=lbl("three"), size=16))
        a.emit("addpd", XMM0, mem(disp=lbl("c"), size=16))
        a.emit("dec", RBX)
        a.emit("jne", lbl("top"))
        a.emit("movapd", mem(disp=lbl("v"), size=16), XMM0)

    return asm_program(body, data=fp_data([
        ("v", [1.0, 2.0]), ("three", [3.0, 3.0]), ("c", [1.0, 0.5]),
    ]))


def _lanes(m, binary):
    base = binary.symbols["v"]
    return (bits_to_f64(m.memory.read(base, 8)),
            bits_to_f64(m.memory.read(base + 8, 8)))


def test_packed_vanilla_identical():
    m_nat = load_binary(build_packed())
    m_nat.run()
    nat = _lanes(m_nat, m_nat.binary)

    binary = build_packed()
    m = load_binary(binary)
    fpvm = FPVM(VanillaArithmetic())
    fpvm.install(m)
    m.run()
    fpvm.uninstall()  # demotes the stored lanes in place
    assert _lanes(m, binary) == nat
    # one trap covered both lanes; two shadow values per trap
    assert fpvm.emulator.boxes_created >= 2 * m.fp_trap_count


def test_packed_mpfr_lanes_independent():
    binary = build_packed()
    m = load_binary(binary)
    fpvm = FPVM(BigFloatArithmetic(200))
    fpvm.install(m)
    m.run()
    fpvm.uninstall()
    lo, hi = _lanes(m, binary)
    # six steps of x -> x/3 + c: x6 = fix + (x0 - fix) * 3^-6
    assert abs(lo - (1.5 - 0.5 * 3.0**-6)) < 1e-12
    assert abs(hi - (0.75 + 1.25 * 3.0**-6)) < 1e-12
    assert lo != hi


def test_movq_hole_and_patch():
    """movq r64, xmm silently exfiltrates a box; the analyzer patches
    it unconditionally and the demotion restores real bits."""
    def body(a):
        a.emit("movsd", XMM0, mem(disp=lbl("one")))
        a.emit("divsd", XMM0, mem(disp=lbl("three")))  # boxed
        a.emit("movq", RAX, XMM0)                       # the hole
        a.emit("mov", RBX, RAX)

    def data(a):
        a.double("one", 1.0)
        a.double("three", 3.0)

    expected = f64_to_bits(1.0 / 3.0)

    # unpatched: rbx holds box bits
    m = load_binary(asm_program(body, data=data))
    FPVM(VanillaArithmetic()).install(m)
    m.run()
    assert m.regs.get_gpr("rbx") != expected

    # patched: movq site demotes first
    binary = asm_program(body, data=data)
    report = analyze_and_patch(binary)
    assert report.movq_sites
    m = load_binary(binary)
    fpvm = FPVM(VanillaArithmetic())
    fpvm.install(m)
    m.run()
    assert m.regs.get_gpr("rbx") == expected
    assert fpvm.stats.correctness_demotions >= 1
