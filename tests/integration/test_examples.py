"""Smoke tests: every example script runs to completion."""

import subprocess
import sys
from pathlib import Path

import pytest

EXAMPLES = Path(__file__).resolve().parent.parent.parent / "examples"


def run_example(name: str, *args: str) -> str:
    proc = subprocess.run(
        [sys.executable, str(EXAMPLES / name), *args],
        capture_output=True, text=True, timeout=600,
    )
    assert proc.returncode == 0, proc.stderr[-2000:]
    return proc.stdout


def test_quickstart():
    out = run_example("quickstart.py")
    assert "fixed point" in out
    assert "FPVM + mpfr200" in out
    assert "FPVM + posit32es2" in out


def test_lorenz_chaos_small():
    out = run_example("lorenz_chaos.py", "150")
    assert "bit-identical" in out
    assert "MPFR-200:" in out


def test_analyze_binary():
    out = run_example("analyze_binary.py")
    assert "matches native: True" in out
    assert "correctness traps installed" in out


def test_three_body_precision():
    out = run_example("three_body_precision.py")
    assert "vanilla" in out
    assert "posit16" in out


def test_fpspy_survey():
    out = run_example("fpspy_survey.py")
    assert "nas_cg" in out and "rate" in out


def test_interval_error_bars():
    out = run_example("interval_error_bars.py")
    assert "enclosure" in out and "Lorenz" in out


@pytest.mark.parametrize("workload", ["lorenz"])
def test_overhead_tour(workload):
    out = run_example("overhead_tour.py", workload)
    assert "kernel module" in out
    assert "total" in out
