"""End-to-end chaos campaigns: survival, determinism, crash isolation."""

import json

from repro.faults import (FaultPlan, FaultRule, chaos_cells, run_campaign,
                          survival_table)
from repro.faults.crashreport import write_crash_report
from repro.harness.experiment import MatrixCell, run_matrix


def _small_campaign(seed=0):
    cells = chaos_cells(
        ["lorenz"], [("vanilla",)], seed=seed,
        stages=("emulate", "gc_sweep", "shadow_lookup"),
        size="test", storm_threshold=4)
    return run_campaign(cells, jobs=2, timeout_s=120, retries=1)


class TestCampaign:
    def test_every_cell_survives_or_reports(self):
        results = _small_campaign()
        assert len(results) == 4  # control + three stages
        for res in results:
            # survival contract: a result with data, or a structured
            # crash report — never an unhandled exception
            if res.error is None:
                assert res.exit_code == 0
            else:
                assert res.error_type
                assert res.crash_records
                assert res.crash_records[0]["kind"] == "crash"

    def test_injected_cells_record_degradations(self):
        results = _small_campaign()
        by_label = {r.cell.label: r for r in results}
        assert by_label["control"].degradations == 0
        assert by_label["control"].faults_fired == {}
        fired = sum(sum(r.faults_fired.values()) for r in results)
        degraded = sum(r.degradations for r in results)
        assert fired > 0 and degraded > 0

    def test_same_seed_reproduces_identical_table(self):
        t1 = survival_table(_small_campaign(seed=3))
        t2 = survival_table(_small_campaign(seed=3))
        assert t1 == t2

    def test_different_seeds_differ(self):
        # not a hard law (a tiny campaign can collide), but with the
        # probability rules at play two seeds matching bit-for-bit on
        # fired counts would indicate the seed isn't threaded through
        fired = []
        for seed in (0, 1, 2):
            results = _small_campaign(seed=seed)
            fired.append(tuple(sum(r.faults_fired.values())
                               for r in results))
        assert len(set(fired)) > 1


class TestMatrixIsolation:
    def test_watchdog_crash_is_contained(self):
        cells = [
            MatrixCell("lorenz", size="test", arith=("vanilla",),
                       max_instructions=1_000, label="doomed"),
            MatrixCell("lorenz", size="test", arith=("vanilla",),
                       label="healthy"),
        ]
        results = run_matrix(cells, jobs=2, timeout_s=120, retries=0)
        doomed, healthy = results
        assert doomed.error is not None
        assert doomed.error_type == "WatchdogExpired"
        assert not doomed.survived
        kinds = [r["kind"] for r in doomed.crash_records]
        assert kinds[0] == "crash" and "cell" in kinds
        assert healthy.error is None and healthy.exit_code == 0

    def test_crash_records_serialize_as_ndjson(self, tmp_path):
        cell = MatrixCell(
            "lorenz", size="test", arith=("vanilla",),
            fault_plan=FaultPlan(seed=1, rules=(
                FaultRule("emulate", nth=1),)),
            max_instructions=1_000, label="doomed")
        res = run_matrix([cell], jobs=1)[0]
        assert res.error is not None
        path = tmp_path / "report.ndjson"
        write_crash_report(path, res.crash_records)
        records = [json.loads(l) for l in path.read_text().splitlines()]
        cell_rec = next(r for r in records if r["kind"] == "cell")
        assert cell_rec["workload"] == "lorenz"
        assert "emulate" in cell_rec["fault_plan"]

    def test_serial_and_pooled_agree(self):
        cells = chaos_cells(["lorenz"], [("vanilla",)], seed=0,
                            stages=("emulate",), size="test")
        serial = run_matrix(cells, jobs=1)
        pooled = run_matrix(cells, jobs=2)
        for a, b in zip(serial, pooled):
            assert a.stdout == b.stdout
            assert a.cycles == b.cycles
            assert a.faults_fired == b.faults_fired
