"""Integration tests for the §5.3 overhead machinery: Fig. 9/10/12/14
generators produce the paper's qualitative structure at test scale."""

import pytest

from repro.arith import BigFloatArithmetic, VanillaArithmetic
from repro.harness.experiment import slowdown
from repro.harness import figures as F
from repro.workloads import WORKLOADS
from repro.session import Session
from repro.fpvm.runtime import FPVMConfig


@pytest.fixture(scope="module")
def lorenz_runs():
    spec = WORKLOADS["lorenz"]
    nat = Session(lambda: spec.build("test"), None).run()
    mp = Session(lambda: spec.build("test"), BigFloatArithmetic(200), config=FPVMConfig(gc_epoch_cycles=300_000)).run()
    return nat, mp


class TestFig9Structure:
    def test_breakdown_components(self, lorenz_runs):
        _, mp = lorenz_runs
        row = mp.fpvm.stats.fig9_breakdown(mp.machine)
        # totals in the paper's 12k-24k band
        assert 10_000 <= row["total"] <= 26_000
        # kernel overhead dominates hardware (user-level delivery)
        assert row["kernel overhead"] > row["hardware overhead"]
        # decode is amortized to nearly nothing (decode cache)
        assert row["decode"] < 150
        assert mp.fpvm.decode_cache.hit_rate > 0.95

    def test_emulate_includes_arith_cost(self, lorenz_runs):
        _, mp = lorenz_runs
        row = mp.fpvm.stats.fig9_breakdown(mp.machine)
        plat = mp.machine.cost.platform
        assert row["emulate"] >= plat.emulate_base_cycles

    def test_correctness_component_zero_for_lorenz(self, lorenz_runs):
        _, mp = lorenz_runs
        row = mp.fpvm.stats.fig9_breakdown(mp.machine)
        assert row["correctness overhead"] == 0

    def test_enzo_correctness_component_substantial(self):
        spec = WORKLOADS["enzo"]
        res = Session(lambda: spec.build("test"), BigFloatArithmetic(200)).run()
        row = res.fpvm.stats.fig9_breakdown(res.machine)
        assert row["correctness overhead"] > 500  # the paper's outlier
        # but the vast majority of the dynamic checks succeed
        st = res.fpvm.stats
        assert st.correctness_demotions < 0.1 * st.correctness_traps


class TestFig10GC:
    def test_gc_collects_most_garbage(self, lorenz_runs):
        _, mp = lorenz_runs
        summary = mp.fpvm.gc.summary()
        assert summary["passes"] >= 1
        assert summary["collect_fraction"] > 0.5
        assert summary["freed"] > 0

    def test_gc_cycles_minor_vs_delivery(self, lorenz_runs):
        """Fig. 9: GC is 2nd/3rd order behind kernel + emulation."""
        _, mp = lorenz_runs
        b = mp.machine.cost.buckets
        assert b.get("gc", 0) < b["kernel_delivery"]
        assert b.get("gc", 0) < b["emulate"]


class TestFig12Shape:
    @pytest.fixture(scope="class")
    def slowdowns(self):
        out = {}
        for name in ("nas_is", "lorenz", "nas_cg", "enzo"):
            spec = WORKLOADS[name]
            nat = Session(lambda: spec.build("test"), None).run()
            mp = Session(lambda: spec.build("test"), BigFloatArithmetic(200)).run()
            out[name] = slowdown(nat, mp)
        return out

    def test_everything_is_orders_of_magnitude(self, slowdowns):
        assert all(s > 20 for s in slowdowns.values())

    def test_is_and_lorenz_smallest(self, slowdowns):
        """IS (FP only in key generation) and Lorenz (output-dominated)
        are the paper's two smallest rows; ours likewise."""
        smallest_two = sorted(slowdowns, key=slowdowns.get)[:2]
        assert set(smallest_two) == {"nas_is", "lorenz"}

    def test_cg_exceeds_lorenz_and_is(self, slowdowns):
        """CG is nearly pure rounding FP: far above IS; lorenz's
        output-heavy loop keeps it low (paper rows 204x/268x/12,169x)."""
        assert slowdowns["nas_cg"] > slowdowns["nas_is"]
        assert slowdowns["nas_cg"] > slowdowns["lorenz"]


class TestFig14Scenarios:
    def test_table_ratios(self):
        rows = F.fig14_trap_delivery()
        for name, r in rows.items():
            assert 7 <= r["user_over_kernel"] <= 30
            assert r["pipeline"] <= 100

    def test_end_to_end_scenario_ordering(self):
        out = F.fig14_scenario_slowdowns("lorenz", "test")
        assert out["user"] > out["kernel"] > out["hrt"] > out["pipeline"]
        assert out["pipeline"] > 1  # arithmetic itself still costs


class TestFig3PatchVsTrap:
    def test_patch_mode_beats_trap_mode_on_hot_loops(self):
        out = F.fig3_patch_vs_trap("lorenz", "test")
        assert out["identical_output"]
        tae = out["trap-and-emulate"]
        tap = out["trap-and-patch"]
        assert tap["slowdown"] < tae["slowdown"]
        assert tap["fault_deliveries"] < tae["fault_deliveries"]
        assert tap["patch_sites"] > 0


class TestMPFRPrecisionScaling:
    def test_emulate_bucket_grows_with_precision(self):
        spec = WORKLOADS["three_body"]
        lo = Session(lambda: spec.build("test"), BigFloatArithmetic(64)).run()
        hi = Session(lambda: spec.build("test"), BigFloatArithmetic(2048)).run()
        assert hi.machine.cost.buckets["emulate"] > \
            lo.machine.cost.buckets["emulate"]
        # but delivery cost is precision-independent
        assert hi.machine.cost.buckets["kernel_delivery"] == \
            pytest.approx(lo.machine.cost.buckets["kernel_delivery"],
                          rel=0.01)
