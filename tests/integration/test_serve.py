"""End-to-end serving-tier tests: one daemon per test on an ephemeral
port, exercised through the real HTTP client.

The acceptance bar from the serving tier's design: under chaos that
kills workers mid-job plus a queue flood, zero accepted jobs are lost,
retried jobs return results bit-identical to a standalone
``Session.run``, and load is shed to vanilla-precision *before* any
job is rejected.
"""

import json
import threading
import time

import pytest

from repro.serve import (ServeChaosPlan, ServeConfig, generate_load,
                         start_in_thread)
from repro.session import Session

LORENZ_MPFR = {"workload": "lorenz", "size": "test", "arith": "mpfr:64"}


@pytest.fixture
def daemon():
    handle = start_in_thread(ServeConfig(
        workers=2, queue_limit=8, shed_watermark=4, job_timeout_s=60.0,
        retries=2, backoff_s=0.02))
    try:
        yield handle
    finally:
        handle.stop()


def test_health_and_selftest(daemon):
    h = daemon.client().health()
    assert h["status"] == "ok"
    assert h["selftest"] is True
    assert h["lost"] == 0
    assert h["pool"]["alive"] == 2


def test_served_job_bit_identical_to_session(daemon):
    status, doc = daemon.client().submit(LORENZ_MPFR)
    assert status == 200 and doc["ok"]
    with Session("lorenz", "mpfr:64", size="test") as s:
        ref = s.run(50_000_000)
    assert doc["stdout"] == ref.stdout
    assert doc["exit_code"] == ref.exit_code
    assert doc["instr_count"] == ref.instr_count
    assert doc["fp_instr_count"] == ref.fp_instr_count
    assert doc["fp_traps"] == ref.fp_traps
    assert doc["binary_hash"]


def test_repeat_submission_hits_cache(daemon):
    client = daemon.client()
    _, first = client.submit(LORENZ_MPFR)
    assert not first["cached"]
    _, again = client.submit(LORENZ_MPFR)
    assert again["cached"]
    assert again["stdout"] == first["stdout"]
    assert again["instr_count"] == first["instr_count"]
    assert client.health()["cache"]["hits"] >= 1


def test_params_and_stdin_separate_cache_entries(daemon):
    client = daemon.client()
    _, a = client.submit(LORENZ_MPFR)
    _, b = client.submit({**LORENZ_MPFR, "max_instructions": 49_000_000})
    assert not b["cached"]
    assert a["stdout"] == b["stdout"]  # same run, different key


def test_trace_round_trip(daemon):
    _, doc = daemon.client().submit({**LORENZ_MPFR, "trace": True})
    assert doc["ok"]
    lines = [json.loads(x) for x in
             doc["trace_ndjson"].strip().splitlines()]
    kinds = {rec["kind"] for rec in lines}
    assert "run_meta" in kinds
    assert "trap" in kinds


def test_malformed_submission_is_400(daemon):
    status, doc = daemon.client().submit({"workload": "no_such"})
    assert status == 400
    assert "no_such" in doc["error"]
    status, _ = daemon.client().submit({})
    assert status == 400
    # daemon is still healthy afterwards
    assert daemon.client().health()["status"] == "ok"


def test_crashing_guest_is_contained_and_attributed(daemon, tmp_path):
    crash_log = daemon.daemon.config.crash_log = str(tmp_path / "c.ndjson")
    client = daemon.client()
    # a watchdog the guest cannot satisfy: typed in-worker crash
    status, doc = client.submit({**LORENZ_MPFR, "tenant": "acme",
                                 "max_instructions": 1_000})
    assert status == 200          # contained: an answer, not a 500
    assert not doc["ok"]
    assert doc["error_type"]
    assert doc["crash_records"]
    for rec in doc["crash_records"]:
        assert rec["job_id"] == doc["job_id"]
        assert rec["tenant"] == "acme"
    # the daemon appended the same records to its crash log
    logged = [json.loads(x) for x in
              open(crash_log).read().strip().splitlines()]
    assert any(rec.get("job_id") == doc["job_id"] for rec in logged)
    # and the pool is unharmed
    health = client.health()
    assert health["status"] == "ok" and health["lost"] == 0


def test_worker_killed_midjob_retries_bit_identical(daemon):
    client = daemon.client()
    with Session("lorenz", "mpfr:64", size="test") as s:
        ref = s.run(50_000_000)

    done = threading.Event()
    box = {}

    def submit():
        box["resp"] = client.submit({**LORENZ_MPFR, "no_cache": True,
                                     "chaos": {"sleep_s": 0.6}})
        done.set()

    threading.Thread(target=submit, daemon=True).start()
    # wait until the job is actually on a worker, then kill that worker
    deadline = time.time() + 10
    while not daemon.daemon.pool.busy_indices():
        assert time.time() < deadline, "job never reached a worker"
        time.sleep(0.01)
    assert daemon.daemon.pool.kill_worker(busy_only=True) is not None
    assert done.wait(90), "retried job never completed"
    status, doc = box["resp"]
    assert status == 200 and doc["ok"]
    assert doc["retries"] >= 1
    assert doc["stdout"] == ref.stdout
    assert doc["instr_count"] == ref.instr_count
    assert doc["fp_traps"] == ref.fp_traps
    health = client.health()
    assert health["lost"] == 0
    assert health["pool"]["worker_deaths"] >= 1


def test_timeout_kills_stuck_worker_and_errors_structuredly():
    handle = start_in_thread(ServeConfig(
        workers=1, queue_limit=8, shed_watermark=8,
        job_timeout_s=0.3, retries=1, backoff_s=0.01, selftest=False))
    try:
        client = handle.client()
        status, doc = client.submit(
            {**LORENZ_MPFR, "no_cache": True, "chaos": {"sleep_s": 30}})
        assert status == 200
        assert not doc["ok"]
        assert doc["error_type"] == "JobTimeout"
        assert doc["retries"] >= 1      # it was retried before giving up
        # pool recovered: a normal job still runs
        status, doc = client.submit(LORENZ_MPFR)
        assert status == 200 and doc["ok"]
        assert client.health()["lost"] == 0
    finally:
        handle.stop()


def test_flood_sheds_to_vanilla_before_rejecting():
    handle = start_in_thread(ServeConfig(
        workers=2, queue_limit=6, shed_watermark=2, job_timeout_s=60.0,
        retries=2, backoff_s=0.02, selftest=False))
    try:
        client = handle.client()
        results = []
        lock = threading.Lock()

        def fire():
            resp = client.submit({**LORENZ_MPFR, "no_cache": True,
                                  "chaos": {"sleep_s": 0.4}})
            with lock:
                results.append(resp)

        threads = [threading.Thread(target=fire, daemon=True)
                   for _ in range(14)]
        for t in threads:
            t.start()
        for t in threads:
            t.join(120)

        ok = [d for s, d in results if s == 200 and d.get("ok")]
        shed = [d for d in ok if d["shed"]]
        rejected = [d for s, d in results if s == 429]
        assert len(results) == 14
        assert shed, "queue pressure should shed before rejecting"
        assert rejected, "queue limit should produce structured 429s"
        for d in shed:   # shed jobs really ran vanilla
            assert d["arith"] == "vanilla"
            assert d["requested_arith"] == "mpfr:64"
        d = rejected[0]
        assert d["error"] == "overloaded"
        assert d["queue_depth"] >= d["queue_limit"]
        health = client.health()
        assert health["lost"] == 0
        assert health["rejected"] == len(rejected)
    finally:
        handle.stop()


def test_chaos_campaign_zero_lost_jobs():
    """The acceptance scenario: worker-kill chaos + steady load →
    every accepted job completes exactly once, none lost."""
    handle = start_in_thread(ServeConfig(
        workers=2, queue_limit=16, shed_watermark=12, job_timeout_s=60.0,
        retries=3, backoff_s=0.02, selftest=False))
    try:
        client = handle.client()
        monkey = ServeChaosPlan(kills=3, interval_s=0.25,
                                initial_delay_s=0.15, seed=7).monkey(
                                    handle.daemon.pool)
        monkey.start()
        report = generate_load(
            client, {**LORENZ_MPFR, "no_cache": True},
            duration_s=3.0, concurrency=4)
        monkey.stop()
        assert report["lost"] == 0
        assert report["completed"] > 0
        assert report["outcomes"].get("ok", 0) == report["completed"]
        health = client.health()
        assert health["lost"] == 0
        assert health["status"] == "ok"           # pool fully respawned
        assert monkey.kills_done >= 1
        assert health["pool"]["worker_deaths"] >= monkey.kills_done
    finally:
        handle.stop()


def test_async_submit_and_poll(daemon):
    client = daemon.client()
    status, doc = client.submit({**LORENZ_MPFR, "no_cache": True},
                                wait=False)
    assert status == 202 and doc["pending"]
    job_id = doc["job_id"]
    deadline = time.time() + 60
    while True:
        status, doc = client.job(job_id)
        if status == 200:
            break
        assert status == 202
        assert time.time() < deadline
        time.sleep(0.05)
    assert doc["ok"] and doc["job_id"] == job_id


def test_unknown_job_is_404(daemon):
    status, _ = daemon.client().job(999999)
    assert status == 404
