"""The §3 four-approach matrix (Fig. 3), executable.

All four ways of building an FPVM produce identical results; their
cost structures differ exactly as the paper's comparison table says:

* trap-and-emulate: zero overhead when arithmetic isn't involved,
  expensive fault delivery when it is;
* trap-and-patch: delivery only on first fault per site;
* static binary transformation: no hardware checks at all, every FP
  site pays the software check always;
* compiler-based: like static, with cheaper (optimizer-folded) checks.
"""

import pytest

from repro.arith import BigFloatArithmetic, VanillaArithmetic
from repro.compiler import compile_source, instrument_fp_sites
from repro.harness.experiment import slowdown
from repro.workloads import WORKLOADS
from repro.session import Session
from repro.fpvm.runtime import FPVMConfig

HOT_SRC = """
long main() {
    double x = 1.0;
    for (long i = 0; i < 150; i = i + 1) { x = x / 3.0 + 1.0; }
    printf("%.17g\\n", x);
    return 0;
}
"""


def _four_runs(src, arith_factory):
    runs = {}
    runs["tae"] = Session(lambda: compile_source(src), arith_factory(), config=FPVMConfig(mode="trap-and-emulate")).run()
    runs["tap"] = Session(lambda: compile_source(src), arith_factory(), config=FPVMConfig(mode="trap-and-patch")).run()
    runs["static"] = Session(lambda: compile_source(src), arith_factory(), config=FPVMConfig(mode="static")).run()
    runs["compiler"] = Session(lambda: compile_source(src, instrument_fp=True), arith_factory(), config=FPVMConfig(mode="static")).run()
    return runs


class TestCorrectness:
    def test_all_four_identical_output(self):
        native = Session(lambda: compile_source(HOT_SRC), None).run()
        runs = _four_runs(HOT_SRC, VanillaArithmetic)
        for name, r in runs.items():
            assert r.stdout == native.stdout, name

    @pytest.mark.parametrize("name", ["lorenz", "nas_ep", "enzo"])
    def test_static_mode_on_workloads(self, name):
        spec = WORKLOADS[name]
        native = Session(lambda: spec.build("test"), None).run()
        r = Session(lambda: spec.build("test"), VanillaArithmetic(), config=FPVMConfig(mode="static")).run()
        assert r.stdout == native.stdout
        assert r.fp_traps == 0  # "no hardware checks are used at all"

    def test_compiler_instrumented_runs_without_fpvm(self):
        native = Session(lambda: compile_source(HOT_SRC), None).run()
        inst = Session(lambda: compile_source(HOT_SRC,
                                                 instrument_fp=True), None).run()
        assert inst.stdout == native.stdout

    def test_instrument_counts_sites(self):
        binary = compile_source(HOT_SRC)
        fp_sites = sum(1 for i in binary.text
                       if i.mnemonic in ("divsd", "addsd", "ucomisd"))
        b2 = compile_source(HOT_SRC, instrument_fp=True)
        patched = sum(1 for i in b2.text if i.mnemonic == "fpvm_patch")
        assert patched >= fp_sites

    def test_analysis_of_instrumented_binary(self):
        """VSA looks through compiler checks (the §3.4 pipeline still
        needs sink patching for the integer-load holes)."""
        src = HOT_SRC.replace('printf("%.17g\\n", x);',
                              'printf("%.17g %d\\n", x, __bits(x) & 7);')
        native = Session(lambda: compile_source(src), None).run()
        r = Session(lambda: compile_source(src, instrument_fp=True), VanillaArithmetic(), config=FPVMConfig(mode="static")).run()
        assert r.stdout == native.stdout


class TestCostStructure:
    def test_hot_loop_ordering(self):
        """Always-trapping code: TAE pays delivery every time and loses
        to all three check-based approaches (Fig. 3 row 'overhead when
        alternative arithmetic involved')."""
        native = Session(lambda: compile_source(HOT_SRC), None).run()
        runs = _four_runs(HOT_SRC, lambda: BigFloatArithmetic(200))
        s = {k: slowdown(native, v) for k, v in runs.items()}
        assert s["tae"] > s["tap"] > 1
        assert s["tae"] > s["static"] > 1
        # compiler checks are the cheapest of the check-based trio
        assert s["compiler"] <= s["static"] + 1

    def test_static_has_no_fault_deliveries(self):
        runs = _four_runs(HOT_SRC, VanillaArithmetic)
        assert runs["static"].fp_traps == 0
        assert runs["compiler"].fp_traps == 0
        assert runs["tae"].fp_traps > 100

    def test_cold_code_prefers_tae(self):
        """Code whose FP never rounds: TAE pays nothing (hardware
        checks are free), static pays its checks on every site (Fig. 3
        row 'overhead when alternative arithmetic not involved')."""
        src = """
        long main() {
            double acc = 0.0;
            for (long i = 0; i < 120; i = i + 1) {
                acc = acc + 1.5;        // exact: never traps
            }
            printf("%g\\n", acc);
            return 0;
        }
        """
        native = Session(lambda: compile_source(src), None).run()
        tae = Session(lambda: compile_source(src), VanillaArithmetic(), config=FPVMConfig(mode="trap-and-emulate")).run()
        static = Session(lambda: compile_source(src), VanillaArithmetic(), config=FPVMConfig(mode="static")).run()
        assert tae.stdout == static.stdout == native.stdout
        assert tae.fp_traps == 0
        tae_over = tae.cycles - native.cycles
        static_over = static.cycles - native.cycles
        assert tae_over < static_over  # zero-ish vs per-site checks
