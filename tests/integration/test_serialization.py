"""The §2 "serialization problem": fwrite under FPVM.

    "Code that writes floating point values to storage or to a network
    connection will instead be writing shadowed values… Another
    approach that could be taken is to do conversion back to IEEE
    floating point values at the point of serialization, but this
    would entail losing all the promoted values."

Our FPVM implements the conversion-at-serialization-point strategy via
its fwrite output wrapper; these tests pin down both the failure mode
(raw boxes escape without the wrapper) and the chosen fix.
"""

import struct

from repro.arith import BigFloatArithmetic, VanillaArithmetic
from repro.compiler import compile_source
from repro.fpvm import FPVM
from repro.machine.loader import load_binary
from repro.session import Session

SRC = """
double buf[4];
long main() {
    double x = 1.0;
    for (long i = 0; i < 4; i = i + 1) {
        x = x / 3.0 + 1.0;      // rounds: boxed under FPVM
        buf[i] = x;
    }
    fwrite(buf, 8, 4, 0);       // serialize the array
    return 0;
}
"""


def _doubles(stdout: str) -> list[float]:
    raw = stdout.encode("latin-1")
    return [struct.unpack_from("<d", raw, 8 * i)[0] for i in range(4)]


def test_native_serializes_values():
    r = Session(lambda: compile_source(SRC), None).run()
    vals = _doubles(r.stdout)
    assert all(1.0 < v < 1.6 for v in vals)


def test_fpvm_wrapper_demotes_at_serialization_point():
    r = Session(lambda: compile_source(SRC), VanillaArithmetic()).run()
    native = Session(lambda: compile_source(SRC), None).run()
    assert r.stdout == native.stdout  # byte-identical file contents
    # MPFR: demoted doubles, not box bit patterns, and near the native
    mp = Session(lambda: compile_source(SRC), BigFloatArithmetic(200)).run()
    vals = _doubles(mp.stdout)
    ref = _doubles(native.stdout)
    for v, nv in zip(vals, ref):
        assert abs(v - nv) < 1e-12  # real numbers, tiny precision delta


def test_without_wrapper_boxes_escape():
    """Disable FPVM's output wrapper: the 'file' contains sNaN boxes —
    the unsolved failure the paper describes."""
    import math

    binary = compile_source(SRC)
    m = load_binary(binary)
    fpvm = FPVM(VanillaArithmetic())
    fpvm.install(m)
    # undo just the fwrite interposition
    addr = binary.imports["fwrite"]
    m.externs[addr] = fpvm._saved_externs[addr]
    m.run()
    vals = _doubles("".join(m.stdout))
    assert any(math.isnan(v) for v in vals)  # the box bit patterns


def test_compile_file(tmp_path):
    p = tmp_path / "s.fpc"
    p.write_text("long main() { return 7; }")
    from repro.compiler import compile_file

    m = load_binary(compile_file(p))
    m.run()
    assert m.exit_code == 7
