"""Shared fixtures and helpers for the test suite."""

from __future__ import annotations

import pytest

from repro.asm import Assembler
from repro.isa.operands import Imm, Label, Mem, Reg, Xmm
from repro.machine.loader import load_binary


def asm_program(body, *, externs=(), data=None, entry="main"):
    """Build a Binary from a callable that emits into an Assembler.

    ``body(a)`` receives the assembler positioned after the ``main``
    label and must end with a ``ret`` (or rely on the trailing one we
    add).  ``data(a)`` may define data first.
    """
    a = Assembler()
    if externs:
        a.extern(*externs)
    if data is not None:
        data(a)
    a.label(entry)
    body(a)
    a.emit("ret")
    return a.assemble(entry=entry)


def run_program(body, **kwargs):
    """asm_program + load + run; returns the Machine."""
    binary = asm_program(body, **kwargs)
    m = load_binary(binary)
    m.run()
    return m


@pytest.fixture
def assembler():
    return Assembler()


# re-export common operand helpers for terseness in tests
RAX, RBX, RCX, RDX = Reg("rax"), Reg("rbx"), Reg("rcx"), Reg("rdx")
RDI, RSI, RSP, RBP = Reg("rdi"), Reg("rsi"), Reg("rsp"), Reg("rbp")
EAX = Reg("eax")
XMM0, XMM1, XMM2 = Xmm(0), Xmm(1), Xmm(2)


def imm(v):
    return Imm(v)


def lbl(name):
    return Label(name)


def mem(base=None, disp=0, index=None, scale=1, size=8):
    b = base.name if isinstance(base, Reg) else base
    ix = index.name if isinstance(index, Reg) else index
    return Mem(base=b, index=ix, scale=scale, disp=disp, size=size)
